#include "dnn/inference.hh"

#include <algorithm>

#include "telemetry/metrics.hh"

namespace darkside {

namespace {

/**
 * Scoring-stage telemetry (docs/METRICS.md "dnn.infer.*"). Frame and
 * window counts are deterministic: windows fall on fixed batchFrames
 * boundaries, so the same scoring load produces the same counts for
 * any thread count. Wall time is not, and is flagged accordingly.
 */
struct InferMetrics
{
    telemetry::Counter frames;
    telemetry::Counter windows;
    telemetry::Counter denseFcWindows;
    telemetry::Counter sparseFcWindows;
    telemetry::Counter int8FcWindows;
    telemetry::Histogram windowFrames;
    telemetry::Histogram windowWallUs;

    static const InferMetrics &
    get()
    {
        static const InferMetrics m = [] {
            auto &reg = telemetry::MetricRegistry::global();
            InferMetrics im;
            im.frames = reg.counter("dnn.infer.frames", "frames");
            im.windows = reg.counter("dnn.infer.windows", "windows");
            im.denseFcWindows = reg.counter(
                "dnn.infer.dense_fc_windows", "layer-windows");
            im.sparseFcWindows = reg.counter(
                "dnn.infer.sparse_fc_windows", "layer-windows");
            im.int8FcWindows = reg.counter(
                "dnn.infer.int8_fc_windows", "layer-windows");
            im.windowFrames = reg.histogram(
                "dnn.infer.window_frames", "frames", {0.0, 128.0, 32});
            im.windowWallUs = reg.histogram(
                "dnn.infer.window_wall_us", "us", {0.0, 20000.0, 50},
                /*deterministic=*/false);
            return im;
        }();
        return m;
    }
};

} // namespace

InferenceEngine::InferenceEngine(const Mlp &mlp, InferenceOptions options)
    : options_(options)
{
    ds_assert(mlp.layerCount() > 0);
    ds_assert(options_.batchFrames > 0);
    inputSize_ = mlp.inputSize();
    outputSize_ = mlp.outputSize();

    for (std::size_t i = 0; i < mlp.layerCount(); ++i) {
        const Layer &layer = mlp.layer(i);
        Op op;
        op.inWidth = layer.inputSize();
        op.outWidth = layer.outputSize();
        switch (layer.kind()) {
          case LayerKind::FullyConnected: {
            const auto &fc = static_cast<const FullyConnected &>(layer);
            op.kind = OpKind::DenseFc;
            op.fc = &fc;
            if (fc.hasMask()) {
                auto compiled = std::make_unique<SparseLayer>(fc);
                if (compiled->density() <= options_.sparseDensityMax) {
                    op.kind = OpKind::SparseFc;
                    op.fc = nullptr;
                    op.sparse = std::move(compiled);
                }
            }
            // Under Int8, dense FC layers run the quantized kernel
            // (sufficiently sparse masked layers keep the float CSR
            // path — they already skip most of the work, and the int8
            // kernel is dense). Codes attached by WeightQuantizer are
            // shared; otherwise quantize here at compile time.
            if (op.kind == OpKind::DenseFc &&
                options_.precision == ScoringPrecision::Int8) {
                op.kind = OpKind::Int8Fc;
                op.int8 = fc.hasInt8Weights()
                    ? fc.int8Weights()
                    : std::make_shared<const kernels::Int8Matrix>(
                          kernels::Int8Matrix::quantize(fc.weights()));
            }
            if (op.kind == OpKind::SparseFc)
                ++sparseFc_;
            else if (op.kind == OpKind::Int8Fc)
                ++int8Fc_;
            else
                ++denseFc_;
            break;
          }
          case LayerKind::PNormPooling:
            op.kind = OpKind::PNorm;
            op.group = static_cast<const PNormPooling &>(layer)
                           .groupSize();
            break;
          case LayerKind::Renormalize:
            op.kind = OpKind::Renorm;
            break;
          case LayerKind::Softmax:
            op.kind = OpKind::Softmax;
            break;
        }
        ops_.push_back(std::move(op));
    }
}

std::size_t
InferenceEngine::sparseNonzeros() const
{
    std::size_t n = 0;
    for (const auto &op : ops_) {
        if (op.kind == OpKind::SparseFc)
            n += op.sparse->nonzeros();
    }
    return n;
}

void
InferenceEngine::runBatch(const std::vector<Vector> &inputs,
                          std::size_t begin, std::size_t end,
                          std::vector<Vector> &posteriors,
                          InferenceWorkspace &ws) const
{
    const InferMetrics &metrics = InferMetrics::get();
    const telemetry::ScopedTimer timer(metrics.windowWallUs);
    const std::size_t frames = end - begin;
    metrics.frames.add(frames);
    metrics.windows.add(1);
    metrics.windowFrames.observe(static_cast<double>(frames));
    ws.a.resize(frames, inputSize_);
    for (std::size_t f = 0; f < frames; ++f) {
        const Vector &in = inputs[begin + f];
        ds_assert(in.size() == inputSize_);
        std::copy(in.begin(), in.end(), ws.a.rowPtr(f));
    }

    // Operand shapes were validated when the plan was compiled, so a
    // kernel Status failure here is an internal invariant violation.
    const auto check = [](const Status &s) {
        if (!s)
            panic("inference kernel failed: %s", s.message().c_str());
    };

    for (const auto &op : ops_) {
        switch (op.kind) {
          case OpKind::DenseFc:
            check(kernels::denseForward(ws.a, op.fc->weights(),
                                        op.fc->biases(), ws.b, ws.scratch,
                                        options_.backend));
            metrics.denseFcWindows.add(1);
            break;
          case OpKind::SparseFc:
            check(kernels::sparseForward(ws.a, op.sparse->csrView(),
                                         ws.b, ws.scratch,
                                         options_.backend));
            metrics.sparseFcWindows.add(1);
            break;
          case OpKind::Int8Fc:
            check(kernels::int8Forward(ws.a, *op.int8, op.fc->biases(),
                                       ws.b, ws.scratch,
                                       options_.backend));
            metrics.int8FcWindows.add(1);
            break;
          case OpKind::PNorm:
            ws.b.resize(frames, op.outWidth);
            for (std::size_t f = 0; f < frames; ++f) {
                PNormPooling::forwardRow(ws.a.rowPtr(f), ws.b.rowPtr(f),
                                         op.outWidth, op.group);
            }
            break;
          case OpKind::Renorm:
            ws.b.resize(frames, op.outWidth);
            for (std::size_t f = 0; f < frames; ++f) {
                Renormalize::forwardRow(ws.a.rowPtr(f), ws.b.rowPtr(f),
                                        op.outWidth);
            }
            break;
          case OpKind::Softmax:
            ws.b.resize(frames, op.outWidth);
            for (std::size_t f = 0; f < frames; ++f) {
                const float *src = ws.a.rowPtr(f);
                float *dst = ws.b.rowPtr(f);
                std::copy(src, src + op.outWidth, dst);
                softmaxInPlace(dst, op.outWidth);
            }
            break;
        }
        std::swap(ws.a, ws.b);
    }

    for (std::size_t f = 0; f < frames; ++f) {
        const float *row = ws.a.rowPtr(f);
        posteriors[begin + f].assign(row, row + outputSize_);
    }
}

void
InferenceEngine::forwardRange(const std::vector<Vector> &inputs,
                              std::size_t begin, std::size_t end,
                              std::vector<Vector> &posteriors,
                              InferenceWorkspace &ws) const
{
    ds_assert(end <= inputs.size());
    ds_assert(posteriors.size() == inputs.size());
    for (std::size_t f0 = begin; f0 < end; f0 += options_.batchFrames) {
        const std::size_t f1 =
            std::min(end, f0 + options_.batchFrames);
        runBatch(inputs, f0, f1, posteriors, ws);
    }
}

void
InferenceEngine::forwardAll(const std::vector<Vector> &inputs,
                            std::vector<Vector> &posteriors,
                            ThreadPool *pool) const
{
    posteriors.resize(inputs.size());
    if (inputs.empty())
        return;
    if (!pool || pool->threadCount() == 0) {
        InferenceWorkspace ws;
        forwardRange(inputs, 0, inputs.size(), posteriors, ws);
        return;
    }
    const std::size_t batch = options_.batchFrames;
    const std::size_t windows = (inputs.size() + batch - 1) / batch;
    pool->parallelFor(
        windows,
        [&](std::size_t w0, std::size_t w1) {
            InferenceWorkspace ws;
            forwardRange(inputs, w0 * batch,
                         std::min(inputs.size(), w1 * batch), posteriors,
                         ws);
        });
}

void
InferenceEngine::forward(const Vector &input, Vector &posteriors,
                         InferenceWorkspace &ws) const
{
    // A batch of one: reuse the batched path end to end so the two
    // entry points cannot drift apart.
    const std::vector<Vector> inputs{input};
    std::vector<Vector> out(1);
    runBatch(inputs, 0, 1, out, ws);
    posteriors = std::move(out[0]);
}

} // namespace darkside
