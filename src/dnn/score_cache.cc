#include "dnn/score_cache.hh"

#include "telemetry/metrics.hh"

namespace darkside {
namespace detail {

namespace {

/**
 * The five dnn.cache.* counters, registered together so the closed
 * family is always complete once any cache operation ran
 * (tools/metrics_check). Hit/miss totals depend on which thread
 * computes first, so the whole family is nondeterministic.
 */
struct Counters
{
    telemetry::Counter lookup;
    telemetry::Counter hit;
    telemetry::Counter miss;
    telemetry::Counter insert;
    telemetry::Counter evict;

    static const Counters &
    get()
    {
        static const Counters c = [] {
            auto &reg = telemetry::MetricRegistry::global();
            return Counters{
                reg.counter("dnn.cache.lookup", "lookups", false),
                reg.counter("dnn.cache.hit", "lookups", false),
                reg.counter("dnn.cache.miss", "lookups", false),
                reg.counter("dnn.cache.insert", "entries", false),
                reg.counter("dnn.cache.evict", "entries", false),
            };
        }();
        return c;
    }
};

} // namespace

void
DnnCacheMetrics::noteLookup(bool hit) const
{
    const Counters &c = Counters::get();
    c.lookup.add(1);
    (hit ? c.hit : c.miss).add(1);
}

void
DnnCacheMetrics::noteInsert() const
{
    Counters::get().insert.add(1);
}

void
DnnCacheMetrics::noteEvict() const
{
    Counters::get().evict.add(1);
}

const DnnCacheMetrics &
DnnCacheMetrics::get()
{
    static const DnnCacheMetrics m;
    Counters::get(); // register the namespace up front
    return m;
}

} // namespace detail
} // namespace darkside
