/**
 * @file
 * SGD training and evaluation of the acoustic-model MLP. Evaluation
 * reports the three quality metrics the paper contrasts: top-1 error,
 * top-k error and *average confidence* (mean softmax probability of the
 * top-1 class — Sec. II-B / Fig. 3).
 */

#ifndef DARKSIDE_DNN_TRAINER_HH
#define DARKSIDE_DNN_TRAINER_HH

#include <cstdint>
#include <vector>

#include "dnn/mlp.hh"

namespace darkside {

/** One labelled training frame. */
struct LabeledFrame
{
    Vector features;
    std::uint32_t label = 0;
};

/** A labelled frame dataset (e.g. aligned frames of a speech corpus). */
using FrameDataset = std::vector<LabeledFrame>;

/** Per-epoch training telemetry. */
struct EpochReport
{
    double meanLoss = 0.0;
    double learningRate = 0.0;
};

/** Configuration of the SGD run. */
struct TrainerConfig
{
    std::size_t epochs = 6;
    float learningRate = 0.02f;
    /** Multiplicative per-epoch decay. */
    float learningRateDecay = 0.7f;
    std::uint64_t shuffleSeed = 1;
};

/** Quality metrics of a model on a dataset. */
struct EvalReport
{
    double top1Accuracy = 0.0;
    double topKAccuracy = 0.0;
    /** Mean probability assigned to the top-1 class (the paper's
     *  "confidence"). */
    double meanConfidence = 0.0;
    /** Mean cross-entropy against the reference labels. */
    double meanCrossEntropy = 0.0;
    std::size_t frames = 0;
};

/**
 * Plain per-frame SGD trainer.
 */
class Trainer
{
  public:
    explicit Trainer(TrainerConfig config) : config_(config) {}

    /**
     * Train the model in place.
     * @return one report per epoch
     */
    std::vector<EpochReport> train(Mlp &mlp,
                                   const FrameDataset &dataset) const;

    /**
     * Evaluate quality metrics without modifying the model.
     * @param top_k the k of the top-k accuracy column (paper uses 5)
     */
    static EvalReport evaluate(const Mlp &mlp, const FrameDataset &dataset,
                               std::size_t top_k = 5);

  private:
    TrainerConfig config_;
};

} // namespace darkside

#endif // DARKSIDE_DNN_TRAINER_HH
