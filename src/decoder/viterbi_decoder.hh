/**
 * @file
 * Reference software implementation of the Viterbi beam search
 * (Sec. II-C). The decoder is parameterised by a HypothesisSelector, so
 * the same search kernel reproduces the paper's four configurations:
 * baseline unbounded search, narrowed beams, accurate N-best, and the
 * proposed hash-based loose N-best. Per-frame activity counters feed the
 * workload figures (Fig. 4) and the accelerator cycle model.
 */

#ifndef DARKSIDE_DECODER_VITERBI_DECODER_HH
#define DARKSIDE_DECODER_VITERBI_DECODER_HH

#include <vector>

#include "corpus/lexicon.hh"
#include "decoder/acoustic.hh"
#include "nbest/hypothesis.hh"
#include "util/edit_distance.hh"
#include "wfst/wfst.hh"

namespace darkside {

/** Beam-search parameters. */
struct DecoderConfig
{
    /** Beam width in log space (paper default: 15; narrowed to 10/9/8
     *  for the Beam-70/80/90 configurations). */
    float beam = 15.0f;
};

/** Search activity for one frame of speech. */
struct FrameActivity
{
    /** Hypotheses generated (arcs relaxed) this frame — "M". */
    std::uint64_t generated = 0;
    /** Tokens expanded (sources within the beam). */
    std::uint64_t expanded = 0;
    /** Hypotheses alive after selection — "N" (Fig. 4's workload). */
    std::uint64_t survivors = 0;
    /** Selector-internal counters (collisions, evictions, ...). */
    SelectorFrameStats selector;
};

/** One node of the backtrace arena: a word emission on a partial path. */
struct TraceNode
{
    /** Emitted word label (olabel, i.e. word id + 1). */
    OutLabel word;
    /** Index of the previous emission on the path (0 = start). */
    std::uint32_t prev;
};

/** Outcome of decoding one utterance. */
struct DecodeResult
{
    /** Best-path word sequence. */
    std::vector<WordId> words;
    /** Cost of the best complete path (including the final cost). */
    double totalCost = 0.0;
    /** False when no token reached a final state (backtrace is then from
     *  the best non-final token). */
    bool reachedFinal = false;
    /** Per-frame activity. */
    std::vector<FrameActivity> frames;
    /** Backtrace arena (node 0 is the start sentinel). */
    std::vector<TraceNode> trace;
    /** Survivors of the final frame (their .trace indexes `trace`). */
    std::vector<Hypothesis> finalTokens;

    std::uint64_t totalGenerated() const;
    std::uint64_t totalSurvivors() const;
    double meanSurvivorsPerFrame() const;
    std::uint64_t maxSurvivorsPerFrame() const;

    /** Word sequence of the path ending at `trace_index`. */
    std::vector<WordId> backtrace(std::uint32_t trace_index) const;
};

/**
 * Observation hooks the decoder fires while searching. The Viterbi
 * accelerator simulator implements this interface to see the exact
 * state/arc access streams (for its cache models) without the decoder
 * knowing anything about hardware.
 */
class SearchObserver
{
  public:
    virtual ~SearchObserver() = default;

    /** A new utterance of `frames` frames starts. */
    virtual void onUtteranceStart(std::size_t frames) {}

    /** Frame `t` starts. */
    virtual void onFrameStart(std::size_t t) {}

    /** The State Issuer fetched `state` for expansion. */
    virtual void onStateExpand(StateId state) {}

    /** The Arc Issuer fetched arc `arc_index` (and scored arc.ilabel). */
    virtual void onArcTraverse(std::size_t arc_index, const Arc &arc) {}

    /** Frame closed with the given activity counters. */
    virtual void onFrameEnd(const FrameActivity &activity) {}
};

/**
 * Token-passing Viterbi beam search over an all-emitting WFST.
 */
class ViterbiDecoder
{
  public:
    ViterbiDecoder(const Wfst &fst, const DecoderConfig &config);

    /**
     * Decode one utterance.
     * @param scores per-frame acoustic costs
     * @param selector survival policy (reset internally per frame)
     * @param observer optional hardware-model hooks
     */
    DecodeResult decode(const AcousticScores &scores,
                        HypothesisSelector &selector,
                        SearchObserver *observer = nullptr) const;

  private:
    const Wfst &fst_;
    DecoderConfig config_;
};

/**
 * Decode a batch of references and accumulate WER.
 *
 * @param results decoded word sequences
 * @param references ground-truth word sequences
 */
EditStats scoreTranscripts(
    const std::vector<std::vector<WordId>> &results,
    const std::vector<std::vector<WordId>> &references);

} // namespace darkside

#endif // DARKSIDE_DECODER_VITERBI_DECODER_HH
