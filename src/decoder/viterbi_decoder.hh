/**
 * @file
 * Reference software implementation of the Viterbi beam search
 * (Sec. II-C). The decoder is parameterised by a HypothesisSelector, so
 * the same search kernel reproduces the paper's four configurations:
 * baseline unbounded search, narrowed beams, accurate N-best, and the
 * proposed hash-based loose N-best. Per-frame activity counters feed the
 * workload figures (Fig. 4) and the accelerator cycle model.
 *
 * The decode loop itself is a devirtualized template (see DESIGN.md
 * "Decode hot path"): `decode()` dispatches once per utterance on
 * (observer attached?, selector is the UnboundedSelector?), so the
 * common sweep/bench configuration runs with zero virtual calls and
 * zero observer branches per arc, while results stay bit-identical
 * across all dispatch variants.
 */

#ifndef DARKSIDE_DECODER_VITERBI_DECODER_HH
#define DARKSIDE_DECODER_VITERBI_DECODER_HH

#include <limits>
#include <vector>

#include "corpus/lexicon.hh"
#include "decoder/acoustic.hh"
#include "decoder/trace_arena.hh"
#include "nbest/hypothesis.hh"
#include "util/edit_distance.hh"
#include "wfst/wfst.hh"

namespace darkside {

/** Beam-search parameters. */
struct DecoderConfig
{
    /** Beam width in log space (paper default: 15; narrowed to 10/9/8
     *  for the Beam-70/80/90 configurations). */
    float beam = 15.0f;

    /** Trace-arena pool size below which mark-compact collection is
     *  not attempted (see TraceArena; 1 forces a collection at every
     *  frame boundary — the sanitizer stress configuration). */
    std::size_t traceGcMinNodes = 16384;
};

/** Search activity for one frame of speech. */
struct FrameActivity
{
    /** Hypotheses generated (arcs relaxed) this frame — "M". */
    std::uint64_t generated = 0;
    /** Tokens expanded (sources within the beam). */
    std::uint64_t expanded = 0;
    /** Hypotheses alive after selection — "N" (Fig. 4's workload). */
    std::uint64_t survivors = 0;
    /** Selector-internal counters (collisions, evictions, ...). */
    SelectorFrameStats selector;
};

/** Outcome of decoding one utterance. */
struct DecodeResult
{
    /** Best-path word sequence (empty when the search died). */
    std::vector<WordId> words;
    /** Cost of the best complete path (including the final cost);
     *  +inf when the search died before the last frame. */
    double totalCost = std::numeric_limits<double>::infinity();
    /** False when no token reached a final state (backtrace is then from
     *  the best non-final token), and always false for a dead search. */
    bool reachedFinal = false;
    /** Per-frame activity. */
    std::vector<FrameActivity> frames;
    /** Backtrace arena (node 0 is the start sentinel; compacted, so
     *  only nodes live at the end of the search remain). */
    std::vector<TraceNode> trace;
    /** Survivors of the final frame (their .trace indexes `trace`). */
    std::vector<Hypothesis> finalTokens;
    /** Trace-arena lifetime accounting (decode.trace.* telemetry). */
    TraceStats traceStats;

    /** Frame-activity totals, accumulated once during the decode (they
     *  are re-read per utterance by telemetry and bench aggregation,
     *  which used to rescan `frames` on every call). */
    std::uint64_t totalGenerated() const { return generatedTotal; }
    std::uint64_t totalSurvivors() const { return survivorTotal; }
    std::uint64_t maxSurvivorsPerFrame() const { return survivorPeak; }
    double meanSurvivorsPerFrame() const;

    /** Word sequence of the path ending at `trace_index`. */
    std::vector<WordId> backtrace(std::uint32_t trace_index) const;

    /** Decoder-maintained running totals behind the accessors above. */
    std::uint64_t generatedTotal = 0;
    std::uint64_t survivorTotal = 0;
    std::uint64_t survivorPeak = 0;
};

/**
 * Observation hooks the decoder fires while searching. The Viterbi
 * accelerator simulator implements this interface to see the exact
 * state/arc access streams (for its cache models) without the decoder
 * knowing anything about hardware.
 */
class SearchObserver
{
  public:
    virtual ~SearchObserver() = default;

    /** A new utterance of `frames` frames starts. */
    virtual void onUtteranceStart(std::size_t frames) {}

    /** Frame `t` starts. */
    virtual void onFrameStart(std::size_t t) {}

    /** The State Issuer fetched `state` for expansion. */
    virtual void onStateExpand(StateId state) {}

    /** The Arc Issuer fetched arc `arc_index` (and scored arc.ilabel). */
    virtual void onArcTraverse(std::size_t arc_index, const Arc &arc) {}

    /** Frame closed with the given activity counters. */
    virtual void onFrameEnd(const FrameActivity &activity) {}

    /** The utterance's search ended (normally or dead); `trace` is the
     *  backpointer arena's lifetime accounting. */
    virtual void onUtteranceEnd(const TraceStats &trace) {}
};

class UnboundedSelector;
class ViterbiStream;

/**
 * Token-passing Viterbi beam search over an all-emitting WFST.
 */
class ViterbiDecoder
{
  public:
    ViterbiDecoder(const Wfst &fst, const DecoderConfig &config);

    /**
     * Decode one utterance.
     * @param scores per-frame acoustic costs
     * @param selector survival policy (reset internally per frame)
     * @param observer optional hardware-model hooks
     */
    DecodeResult decode(const AcousticScores &scores,
                        HypothesisSelector &selector,
                        SearchObserver *observer = nullptr) const;

    /**
     * Begin an incremental (streaming) decode of one utterance: feed
     * frames in chunks with ViterbiStream::advanceFrames and close with
     * ViterbiStream::finishUtterance. The final DecodeResult is
     * bit-identical (words, totalCost, per-frame counters, trace
     * accounting) to decode() over the same frames with the same
     * selector, for any chunking.
     *
     * The selector, observer, decoder and WFST must outlive the stream.
     * A streaming observer receives onUtteranceStart(0) — the frame
     * count is unknown up front.
     */
    ViterbiStream startUtterance(HypothesisSelector &selector,
                                 SearchObserver *observer = nullptr) const;

  private:
    friend class ViterbiStream;

    template <bool kObserved, typename Sel>
    DecodeResult decodeImpl(const AcousticScores &scores, Sel &selector,
                            SearchObserver *observer) const;

    const Wfst &fst_;
    DecoderConfig config_;
};

/** Best in-flight hypothesis of a streaming decode, emitted between
 *  chunks (the serving layer's partial transcript). */
struct PartialHypothesis
{
    /** Backtrace of the cheapest active token (empty while no words
     *  have been emitted, or once the search died). */
    std::vector<WordId> words;
    /** Cost of that token; +inf on a dead stream. */
    float cost = std::numeric_limits<float>::infinity();
    /** Frames consumed so far. */
    std::size_t frames = 0;
};

/**
 * Per-utterance incremental decode state (see
 * ViterbiDecoder::startUtterance). Runs the exact batch per-frame
 * kernel over whatever chunk boundaries the caller picks, so chunking
 * never changes the result; only the final best-token selection and
 * backtrace wait for finishUtterance().
 *
 * Movable, not copyable. One selector serves one stream at a time (its
 * per-frame state is reset at each frame boundary, exactly as in batch
 * decode). A throwing observer (e.g. DecodeWatchdog) aborts the stream:
 * the exception propagates out of advanceFrames and the stream is dead
 * afterwards — the serving layer's degradation path.
 */
class ViterbiStream
{
  public:
    ViterbiStream(ViterbiStream &&) = default;
    ViterbiStream &operator=(ViterbiStream &&) = default;
    ViterbiStream(const ViterbiStream &) = delete;
    ViterbiStream &operator=(const ViterbiStream &) = delete;

    /**
     * Feed rows [begin, end) of `scores` as the next frames of the
     * utterance. Chunks may slice one utterance-wide score matrix
     * (absolute row indices) or arrive as per-chunk matrices
     * (begin = 0). No-op once the search has died.
     */
    void advanceFrames(const AcousticScores &scores, std::size_t begin,
                       std::size_t end);

    /** Frames consumed so far. */
    std::size_t frames() const { return result_.frames.size(); }

    /** True when the beam/selector killed every token, or an observer
     *  aborted the stream (terminal: further frames are ignored). */
    bool dead() const { return dead_; }

    /** Best partial hypothesis after the frames consumed so far.
     *  Mid-utterance, final states are not preferred — this is the
     *  cheapest active token, which may differ from the eventual
     *  complete-path winner. */
    PartialHypothesis partial() const;

    /**
     * Close the utterance: runs the batch epilogue (best-final vs
     * best-any token, backtrace) and returns the DecodeResult. The
     * stream is spent afterwards. Zero frames fed returns the same
     * empty result batch decode gives an empty score matrix; a dead
     * stream returns the dead-search result (empty words, +inf cost).
     */
    DecodeResult finishUtterance();

  private:
    friend class ViterbiDecoder;

    ViterbiStream(const ViterbiDecoder &decoder,
                  HypothesisSelector &selector, SearchObserver *observer);

    /** The chunk loop, templated on the concrete selector type so
     *  advanceFrames' dispatch (same chain as decode()) reaches the
     *  statically bound stepFrame instantiations. */
    template <typename Sel>
    void advanceImpl(const AcousticScores &scores, std::size_t begin,
                     std::size_t end, Sel &selector);

    const Wfst *fst_;
    DecoderConfig config_;
    HypothesisSelector *selector_;
    SearchObserver *observer_;
    TraceArena arena_;
    std::vector<Hypothesis> active_;
    std::vector<Hypothesis> next_;
    float activeBest_ = 0.0f;
    DecodeResult result_;
    bool dead_ = false;
    bool finished_ = false;
};

/**
 * Decode a batch of references and accumulate WER.
 *
 * @param results decoded word sequences
 * @param references ground-truth word sequences
 */
EditStats scoreTranscripts(
    const std::vector<std::vector<WordId>> &results,
    const std::vector<std::vector<WordId>> &references);

} // namespace darkside

#endif // DARKSIDE_DECODER_VITERBI_DECODER_HH
