#include "decoder/acoustic.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace darkside {

namespace {

constexpr float kProbabilityFloor = 1e-10f;

} // namespace

AcousticScores
AcousticScores::fromPosteriors(const std::vector<Vector> &posteriors,
                               float scale)
{
    ds_assert(!posteriors.empty());
    AcousticScores scores;
    scores.classes_ = posteriors.front().size();
    scores.costs_.reserve(posteriors.size() * scores.classes_);

    double confidence_sum = 0.0;
    for (const auto &frame : posteriors) {
        ds_assert(frame.size() == scores.classes_);
        float peak = 0.0f;
        for (float p : frame) {
            peak = std::max(peak, p);
            scores.costs_.push_back(
                -scale * std::log(std::max(p, kProbabilityFloor)));
        }
        confidence_sum += peak;
    }
    scores.meanConfidence_ =
        confidence_sum / static_cast<double>(posteriors.size());
    return scores;
}

AcousticScores
AcousticScores::fromMlp(const Mlp &mlp, const std::vector<Vector> &inputs,
                        float scale)
{
    return fromEngine(InferenceEngine(mlp), inputs, scale);
}

AcousticScores
AcousticScores::fromEngine(const InferenceEngine &engine,
                           const std::vector<Vector> &inputs, float scale,
                           ThreadPool *pool)
{
    std::vector<Vector> posteriors;
    engine.forwardAll(inputs, posteriors, pool);
    return fromPosteriors(posteriors, scale);
}

AcousticScores
AcousticScores::poisoned(std::size_t frames, std::size_t classes)
{
    ds_assert(frames > 0 && classes > 0);
    AcousticScores scores;
    scores.classes_ = classes;
    scores.costs_.assign(frames * classes,
                         std::numeric_limits<float>::quiet_NaN());
    scores.meanConfidence_ =
        std::numeric_limits<double>::quiet_NaN();
    return scores;
}

bool
AcousticScores::finite() const
{
    for (float c : costs_) {
        if (!std::isfinite(c))
            return false;
    }
    return true;
}

} // namespace darkside
