#include "decoder/acoustic.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace darkside {

namespace {

constexpr float kProbabilityFloor = 1e-10f;

template <typename T>
void
appendPod(std::string &out, const T &v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
consumePod(const std::string &in, std::size_t &offset, T &v)
{
    if (in.size() - offset < sizeof(T))
        return false;
    std::memcpy(&v, in.data() + offset, sizeof(T));
    offset += sizeof(T);
    return true;
}

} // namespace

AcousticScores
AcousticScores::fromPosteriors(const std::vector<Vector> &posteriors,
                               float scale)
{
    ds_assert(!posteriors.empty());
    AcousticScores scores;
    scores.classes_ = posteriors.front().size();
    scores.costs_.reserve(posteriors.size() * scores.classes_);

    double confidence_sum = 0.0;
    for (const auto &frame : posteriors) {
        ds_assert(frame.size() == scores.classes_);
        float peak = 0.0f;
        for (float p : frame) {
            peak = std::max(peak, p);
            scores.costs_.push_back(
                -scale * std::log(std::max(p, kProbabilityFloor)));
        }
        confidence_sum += peak;
    }
    scores.meanConfidence_ =
        confidence_sum / static_cast<double>(posteriors.size());
    return scores;
}

AcousticScores
AcousticScores::fromMlp(const Mlp &mlp, const std::vector<Vector> &inputs,
                        float scale)
{
    return fromEngine(InferenceEngine(mlp), inputs, scale);
}

AcousticScores
AcousticScores::fromEngine(const InferenceEngine &engine,
                           const std::vector<Vector> &inputs, float scale,
                           ThreadPool *pool)
{
    std::vector<Vector> posteriors;
    engine.forwardAll(inputs, posteriors, pool);
    return fromPosteriors(posteriors, scale);
}

AcousticScores
AcousticScores::poisoned(std::size_t frames, std::size_t classes)
{
    ds_assert(frames > 0 && classes > 0);
    AcousticScores scores;
    scores.classes_ = classes;
    scores.costs_.assign(frames * classes,
                         std::numeric_limits<float>::quiet_NaN());
    scores.meanConfidence_ =
        std::numeric_limits<double>::quiet_NaN();
    return scores;
}

std::string
AcousticScores::serialize() const
{
    std::string out;
    out.reserve(24 + costs_.size() * sizeof(float));
    appendPod<std::uint64_t>(out, classes_);
    appendPod<std::uint64_t>(out, costs_.size());
    appendPod<double>(out, meanConfidence_);
    out.append(reinterpret_cast<const char *>(costs_.data()),
               costs_.size() * sizeof(float));
    return out;
}

Result<AcousticScores>
AcousticScores::deserialize(const std::string &bytes,
                            const std::string &context)
{
    const auto malformed = [&context]() {
        return Status::error("'" + context +
                             "': malformed acoustic-score payload");
    };
    std::size_t offset = 0;
    std::uint64_t classes = 0;
    std::uint64_t cost_count = 0;
    double mean_confidence = 0.0;
    if (!consumePod(bytes, offset, classes) ||
        !consumePod(bytes, offset, cost_count) ||
        !consumePod(bytes, offset, mean_confidence)) {
        return malformed();
    }
    if (classes == 0 || cost_count == 0 || cost_count % classes != 0 ||
        bytes.size() - offset != cost_count * sizeof(float)) {
        return malformed();
    }
    AcousticScores scores;
    scores.classes_ = static_cast<std::size_t>(classes);
    scores.meanConfidence_ = mean_confidence;
    scores.costs_.resize(static_cast<std::size_t>(cost_count));
    std::memcpy(scores.costs_.data(), bytes.data() + offset,
                scores.costs_.size() * sizeof(float));
    return scores;
}

ScoreMatrixBuilder::ScoreMatrixBuilder(const InferenceEngine &engine,
                                       const std::vector<Vector> &inputs,
                                       float scale)
    : engine_(&engine), inputs_(&inputs), scale_(scale),
      total_(inputs.size()), posteriors_(inputs.size())
{
    ds_assert(!inputs.empty());
    scores_.classes_ = engine.outputSize();
    // Full allocation up front: rows never move, so a reader may hold
    // row pointers below the scored boundary while later windows land.
    scores_.costs_.assign(total_ * scores_.classes_,
                          std::numeric_limits<float>::quiet_NaN());
}

bool
ScoreMatrixBuilder::scoreTo(std::size_t upTo)
{
    ds_assert(upTo <= total_);
    if (upTo <= scored_)
        return true;

    engine_->forwardRange(*inputs_, scored_, upTo, posteriors_, ws_);

    // Exactly fromPosteriors' per-frame arithmetic, in frame order:
    // identical cost values and an identical confidence accumulation
    // order, so the completed matrix is bit-identical to the batch
    // path for any window boundaries.
    bool all_finite = true;
    for (std::size_t f = scored_; f < upTo; ++f) {
        Vector &frame = posteriors_[f];
        ds_assert(frame.size() == scores_.classes_);
        float *row = scores_.costs_.data() + f * scores_.classes_;
        float peak = 0.0f;
        std::size_t j = 0;
        for (float p : frame) {
            peak = std::max(peak, p);
            const float cost =
                -scale_ * std::log(std::max(p, kProbabilityFloor));
            all_finite = all_finite && std::isfinite(cost);
            row[j++] = cost;
        }
        confidenceSum_ += peak;
        Vector().swap(frame); // keep live scratch to one window
    }
    scored_ = upTo;
    return all_finite;
}

AcousticScores
ScoreMatrixBuilder::take() &&
{
    ds_assert(complete());
    scores_.meanConfidence_ =
        confidenceSum_ / static_cast<double>(total_);
    return std::move(scores_);
}

bool
AcousticScores::finite() const
{
    for (float c : costs_) {
        if (!std::isfinite(c))
            return false;
    }
    return true;
}

} // namespace darkside
