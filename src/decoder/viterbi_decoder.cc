#include "decoder/viterbi_decoder.hh"

#include <algorithm>
#include <limits>

namespace darkside {

std::uint64_t
DecodeResult::totalGenerated() const
{
    std::uint64_t total = 0;
    for (const auto &f : frames)
        total += f.generated;
    return total;
}

std::uint64_t
DecodeResult::totalSurvivors() const
{
    std::uint64_t total = 0;
    for (const auto &f : frames)
        total += f.survivors;
    return total;
}

double
DecodeResult::meanSurvivorsPerFrame() const
{
    if (frames.empty())
        return 0.0;
    return static_cast<double>(totalSurvivors()) /
        static_cast<double>(frames.size());
}

std::uint64_t
DecodeResult::maxSurvivorsPerFrame() const
{
    std::uint64_t peak = 0;
    for (const auto &f : frames)
        peak = std::max(peak, f.survivors);
    return peak;
}

ViterbiDecoder::ViterbiDecoder(const Wfst &fst,
                               const DecoderConfig &config)
    : fst_(fst), config_(config)
{
    ds_assert(config.beam > 0.0f);
}

std::vector<WordId>
DecodeResult::backtrace(std::uint32_t trace_index) const
{
    std::vector<WordId> result;
    std::uint32_t node = trace_index;
    while (node != 0) {
        ds_assert(node < trace.size());
        result.push_back(trace[node].word - 1);
        node = trace[node].prev;
    }
    std::reverse(result.begin(), result.end());
    return result;
}

DecodeResult
ViterbiDecoder::decode(const AcousticScores &scores,
                       HypothesisSelector &selector,
                       SearchObserver *observer) const
{
    DecodeResult result;
    const std::size_t frames = scores.frameCount();
    if (frames == 0)
        return result;
    if (observer)
        observer->onUtteranceStart(frames);

    // Trace node 0 is the sentence-start sentinel.
    std::vector<TraceNode> &trace = result.trace;
    trace.push_back({kEpsilon, 0});

    std::vector<Hypothesis> active;
    active.push_back({fst_.start(), 0.0f, 0});

    result.frames.resize(frames);

    for (std::size_t t = 0; t < frames; ++t) {
        FrameActivity &activity = result.frames[t];
        if (observer)
            observer->onFrameStart(t);

        // Beam pruning: expand only tokens within `beam` of the best.
        float best = std::numeric_limits<float>::infinity();
        for (const auto &h : active)
            best = std::min(best, h.cost);
        const float lattice_beam = best + config_.beam;

        selector.beginFrame();
        for (const auto &token : active) {
            if (token.cost > lattice_beam)
                continue;
            ++activity.expanded;
            if (observer)
                observer->onStateExpand(token.state);
            const std::size_t end = fst_.arcEnd(token.state);
            for (std::size_t a = fst_.arcBegin(token.state); a < end;
                 ++a) {
                const Arc &arc = fst_.arc(a);
                if (observer)
                    observer->onArcTraverse(a, arc);
                Hypothesis hyp;
                hyp.state = arc.dest;
                hyp.cost = token.cost + arc.weight +
                    scores.cost(t, arc.ilabel);
                if (arc.olabel != kEpsilon) {
                    hyp.trace = static_cast<std::uint32_t>(trace.size());
                    trace.push_back({arc.olabel, token.trace});
                } else {
                    hyp.trace = token.trace;
                }
                selector.insert(hyp);
                ++activity.generated;
            }
        }

        active = selector.finishFrame();
        activity.selector = selector.frameStats();
        activity.survivors = active.size();
        if (observer)
            observer->onFrameEnd(activity);
        if (active.empty()) {
            // Search died (beam too small / selector too aggressive):
            // report an empty transcript.
            return result;
        }
    }

    result.finalTokens = active;

    // Pick the best token, preferring complete (final-state) paths.
    const Hypothesis *best_final = nullptr;
    float best_final_cost = std::numeric_limits<float>::infinity();
    const Hypothesis *best_any = nullptr;
    float best_any_cost = std::numeric_limits<float>::infinity();
    for (const auto &h : active) {
        if (h.cost < best_any_cost) {
            best_any_cost = h.cost;
            best_any = &h;
        }
        const float final_cost = fst_.finalCost(h.state);
        if (final_cost != kInfinityCost &&
            h.cost + final_cost < best_final_cost) {
            best_final_cost = h.cost + final_cost;
            best_final = &h;
        }
    }

    const Hypothesis *winner = best_final ? best_final : best_any;
    result.reachedFinal = best_final != nullptr;
    result.totalCost = best_final ? best_final_cost : best_any_cost;

    result.words = result.backtrace(winner->trace);
    return result;
}

EditStats
scoreTranscripts(const std::vector<std::vector<WordId>> &results,
                 const std::vector<std::vector<WordId>> &references)
{
    ds_assert(results.size() == references.size());
    EditStats total;
    for (std::size_t i = 0; i < results.size(); ++i)
        total.merge(alignSequences(references[i], results[i]));
    return total;
}

} // namespace darkside
