#include "decoder/viterbi_decoder.hh"

#include <algorithm>
#include <limits>

#include "nbest/selectors.hh"

namespace darkside {

double
DecodeResult::meanSurvivorsPerFrame() const
{
    if (frames.empty())
        return 0.0;
    return static_cast<double>(survivorTotal) /
        static_cast<double>(frames.size());
}

ViterbiDecoder::ViterbiDecoder(const Wfst &fst,
                               const DecoderConfig &config)
    : fst_(fst), config_(config)
{
    ds_assert(config.beam > 0.0f);
}

std::vector<WordId>
DecodeResult::backtrace(std::uint32_t trace_index) const
{
    std::vector<WordId> result;
    std::uint32_t node = trace_index;
    while (node != 0) {
        ds_assert(node < trace.size());
        result.push_back(trace[node].word - 1);
        node = trace[node].prev;
    }
    std::reverse(result.begin(), result.end());
    return result;
}

/**
 * The search kernel. Templated on observer presence (kObserved) and the
 * concrete selector type: with kObserved == false and Sel a final
 * class, the inner per-arc loop compiles with no observer branches and
 * no virtual calls — pure memory-layout/dispatch optimization, every
 * arithmetic operation and its order identical to the seed loop, so
 * all four instantiations produce bit-identical results.
 */
template <bool kObserved, typename Sel>
DecodeResult
ViterbiDecoder::decodeImpl(const AcousticScores &scores, Sel &selector,
                           SearchObserver *observer) const
{
    DecodeResult result;
    const std::size_t frames = scores.frameCount();
    if (frames == 0)
        return result;
    if constexpr (kObserved)
        observer->onUtteranceStart(frames);

    TraceArena arena(config_.traceGcMinNodes);

    // Double-buffered token storage: `active` is read, the selector
    // writes survivors into `next`, and the buffers swap — no per-frame
    // vector allocation.
    std::vector<Hypothesis> active;
    std::vector<Hypothesis> next;
    active.push_back({fst_.start(), 0.0f, 0});

    result.frames.resize(frames);

    // Minimum cost among `active`, maintained across frames: the lone
    // start token costs 0, afterwards finishFrame reports the survivor
    // minimum — the same min the seed recomputed by scanning.
    float active_best = 0.0f;

    for (std::size_t t = 0; t < frames; ++t) {
        FrameActivity &activity = result.frames[t];
        if constexpr (kObserved)
            observer->onFrameStart(t);

        // Beam pruning: expand only tokens within `beam` of the best.
        const float lattice_beam = active_best + config_.beam;
        // Hoisted acoustic row: scores.cost(t, ilabel) per arc becomes
        // one indexed load.
        const float *row = scores.row(t);

        selector.beginFrame();
        for (const auto &token : active) {
            if (token.cost > lattice_beam)
                continue;
            ++activity.expanded;
            if constexpr (kObserved)
                observer->onStateExpand(token.state);
            const std::size_t begin = fst_.arcBegin(token.state);
            const std::size_t end = fst_.arcEnd(token.state);
            const Arc *arc = fst_.arcData(begin);
            for (std::size_t a = begin; a < end; ++a, ++arc) {
                if constexpr (kObserved)
                    observer->onArcTraverse(a, *arc);
                Hypothesis hyp;
                hyp.state = arc->dest;
                hyp.cost = token.cost + arc->weight + row[arc->ilabel];
                hyp.trace = arc->olabel != kEpsilon
                    ? arena.append(arc->olabel, token.trace)
                    : token.trace;
                selector.insert(hyp);
            }
            activity.generated += end - begin;
        }

        active_best = selector.finishFrame(next);
        activity.selector = selector.frameStats();
        activity.survivors = next.size();
        result.generatedTotal += activity.generated;
        result.survivorTotal += activity.survivors;
        result.survivorPeak =
            std::max(result.survivorPeak, activity.survivors);
        if constexpr (kObserved)
            observer->onFrameEnd(activity);

        active.swap(next);
        if (active.empty()) {
            // Search died (beam too small / selector too aggressive):
            // report an empty transcript with an explicit dead-search
            // outcome (+inf cost, no final state reached).
            arena.finish();
            result.trace = arena.release();
            result.traceStats = arena.stats();
            if constexpr (kObserved)
                observer->onUtteranceEnd(result.traceStats);
            return result;
        }
        // Frame boundary: the survivors are the only live trace roots,
        // so dead backpointer chains are collectable. Remaps the
        // survivors' trace handles in place.
        arena.maybeCollect(active);
    }

    arena.finish();
    result.trace = arena.release();
    result.traceStats = arena.stats();
    result.finalTokens = active;

    // Pick the best token, preferring complete (final-state) paths.
    const Hypothesis *best_final = nullptr;
    float best_final_cost = std::numeric_limits<float>::infinity();
    const Hypothesis *best_any = nullptr;
    float best_any_cost = std::numeric_limits<float>::infinity();
    for (const auto &h : active) {
        if (h.cost < best_any_cost) {
            best_any_cost = h.cost;
            best_any = &h;
        }
        const float final_cost = fst_.finalCost(h.state);
        if (final_cost != kInfinityCost &&
            h.cost + final_cost < best_final_cost) {
            best_final_cost = h.cost + final_cost;
            best_final = &h;
        }
    }

    const Hypothesis *winner = best_final ? best_final : best_any;
    result.reachedFinal = best_final != nullptr;
    result.totalCost = best_final ? best_final_cost : best_any_cost;

    result.words = result.backtrace(winner->trace);
    if constexpr (kObserved)
        observer->onUtteranceEnd(result.traceStats);
    return result;
}

DecodeResult
ViterbiDecoder::decode(const AcousticScores &scores,
                       HypothesisSelector &selector,
                       SearchObserver *observer) const
{
    // Thin dispatcher: one RTTI check per *utterance* buys a fully
    // devirtualized inner loop for the dominant (unbounded) selector;
    // every other selector runs the same kernel through the virtual
    // interface.
    if (auto *unbounded = dynamic_cast<UnboundedSelector *>(&selector)) {
        return observer
            ? decodeImpl<true>(scores, *unbounded, observer)
            : decodeImpl<false>(scores, *unbounded, nullptr);
    }
    return observer ? decodeImpl<true>(scores, selector, observer)
                    : decodeImpl<false>(scores, selector, nullptr);
}

EditStats
scoreTranscripts(const std::vector<std::vector<WordId>> &results,
                 const std::vector<std::vector<WordId>> &references)
{
    ds_assert(results.size() == references.size());
    EditStats total;
    for (std::size_t i = 0; i < results.size(); ++i)
        total.merge(alignSequences(references[i], results[i]));
    return total;
}

} // namespace darkside
