#include "decoder/viterbi_decoder.hh"

#include <algorithm>
#include <limits>

#include "nbest/adaptive_selectors.hh"
#include "nbest/selectors.hh"

namespace darkside {

double
DecodeResult::meanSurvivorsPerFrame() const
{
    if (frames.empty())
        return 0.0;
    return static_cast<double>(survivorTotal) /
        static_cast<double>(frames.size());
}

ViterbiDecoder::ViterbiDecoder(const Wfst &fst,
                               const DecoderConfig &config)
    : fst_(fst), config_(config)
{
    ds_assert(config.beam > 0.0f);
}

std::vector<WordId>
DecodeResult::backtrace(std::uint32_t trace_index) const
{
    std::vector<WordId> result;
    std::uint32_t node = trace_index;
    while (node != 0) {
        ds_assert(node < trace.size());
        result.push_back(trace[node].word - 1);
        node = trace[node].prev;
    }
    std::reverse(result.begin(), result.end());
    return result;
}

namespace {

/**
 * One frame of the search. Shared verbatim by the batch kernel
 * (decodeImpl) and the streaming seam (ViterbiStream), so both paths
 * perform identical arithmetic in identical order — the chunked result
 * is bit-identical to the batch result by construction. Templated on
 * observer presence (kObserved) and the concrete selector type: with
 * kObserved == false and Sel a final class, the inner per-arc loop
 * compiles with no observer branches and no virtual calls.
 *
 * @return false when the search died (no survivors this frame).
 */
template <bool kObserved, typename Sel>
bool
stepFrame(const Wfst &fst, const DecoderConfig &config, TraceArena &arena,
          std::vector<Hypothesis> &active, std::vector<Hypothesis> &next,
          float &active_best, const float *row, std::size_t t,
          FrameActivity &activity, DecodeResult &result, Sel &selector,
          SearchObserver *observer)
{
    if constexpr (kObserved)
        observer->onFrameStart(t);

    // Beam pruning: expand only tokens within `beam` of the best.
    const float lattice_beam = active_best + config.beam;

    selector.beginFrame();
    for (const auto &token : active) {
        if (token.cost > lattice_beam)
            continue;
        ++activity.expanded;
        if constexpr (kObserved)
            observer->onStateExpand(token.state);
        const std::size_t begin = fst.arcBegin(token.state);
        const std::size_t end = fst.arcEnd(token.state);
        const Arc *arc = fst.arcData(begin);
        for (std::size_t a = begin; a < end; ++a, ++arc) {
            if constexpr (kObserved)
                observer->onArcTraverse(a, *arc);
            Hypothesis hyp;
            hyp.state = arc->dest;
            hyp.cost = token.cost + arc->weight + row[arc->ilabel];
            hyp.trace = arc->olabel != kEpsilon
                ? arena.append(arc->olabel, token.trace)
                : token.trace;
            selector.insert(hyp);
        }
        activity.generated += end - begin;
    }

    active_best = selector.finishFrame(next);
    activity.selector = selector.frameStats();
    activity.survivors = next.size();
    result.generatedTotal += activity.generated;
    result.survivorTotal += activity.survivors;
    result.survivorPeak =
        std::max(result.survivorPeak, activity.survivors);
    if constexpr (kObserved)
        observer->onFrameEnd(activity);

    active.swap(next);
    if (active.empty())
        return false;
    // Frame boundary: the survivors are the only live trace roots,
    // so dead backpointer chains are collectable. Remaps the
    // survivors' trace handles in place.
    arena.maybeCollect(active);
    return true;
}

/** Hand the spent arena's pool and accounting to the result. */
void
sealTrace(TraceArena &arena, DecodeResult &result)
{
    arena.finish();
    result.trace = arena.release();
    result.traceStats = arena.stats();
}

/** Batch epilogue: pick the best token, preferring complete
 *  (final-state) paths, and backtrace it. */
void
finalizeBest(const Wfst &fst, DecodeResult &result,
             const std::vector<Hypothesis> &active)
{
    result.finalTokens = active;

    const Hypothesis *best_final = nullptr;
    float best_final_cost = std::numeric_limits<float>::infinity();
    const Hypothesis *best_any = nullptr;
    float best_any_cost = std::numeric_limits<float>::infinity();
    for (const auto &h : active) {
        if (h.cost < best_any_cost) {
            best_any_cost = h.cost;
            best_any = &h;
        }
        const float final_cost = fst.finalCost(h.state);
        if (final_cost != kInfinityCost &&
            h.cost + final_cost < best_final_cost) {
            best_final_cost = h.cost + final_cost;
            best_final = &h;
        }
    }

    const Hypothesis *winner = best_final ? best_final : best_any;
    result.reachedFinal = best_final != nullptr;
    result.totalCost = best_final ? best_final_cost : best_any_cost;
    result.words = result.backtrace(winner->trace);
}

} // namespace

/**
 * The batch search kernel: stepFrame over every row of `scores`, then
 * the best-token epilogue. All four (kObserved x selector)
 * instantiations produce bit-identical results.
 */
template <bool kObserved, typename Sel>
DecodeResult
ViterbiDecoder::decodeImpl(const AcousticScores &scores, Sel &selector,
                           SearchObserver *observer) const
{
    DecodeResult result;
    const std::size_t frames = scores.frameCount();
    if (frames == 0)
        return result;
    if constexpr (kObserved)
        observer->onUtteranceStart(frames);

    TraceArena arena(config_.traceGcMinNodes);
    selector.startUtterance();

    // Double-buffered token storage: `active` is read, the selector
    // writes survivors into `next`, and the buffers swap — no per-frame
    // vector allocation.
    std::vector<Hypothesis> active;
    std::vector<Hypothesis> next;
    active.push_back({fst_.start(), 0.0f, 0});

    result.frames.resize(frames);

    // Minimum cost among `active`, maintained across frames: the lone
    // start token costs 0, afterwards finishFrame reports the survivor
    // minimum — the same min the seed recomputed by scanning.
    float active_best = 0.0f;

    for (std::size_t t = 0; t < frames; ++t) {
        // Hoisted acoustic row: scores.cost(t, ilabel) per arc becomes
        // one indexed load.
        if (!stepFrame<kObserved>(fst_, config_, arena, active, next,
                                  active_best, scores.row(t), t,
                                  result.frames[t], result, selector,
                                  observer)) {
            // Search died (beam too small / selector too aggressive):
            // report an empty transcript with an explicit dead-search
            // outcome (+inf cost, no final state reached).
            sealTrace(arena, result);
            if constexpr (kObserved)
                observer->onUtteranceEnd(result.traceStats);
            return result;
        }
    }

    sealTrace(arena, result);
    finalizeBest(fst_, result, active);
    if constexpr (kObserved)
        observer->onUtteranceEnd(result.traceStats);
    return result;
}

DecodeResult
ViterbiDecoder::decode(const AcousticScores &scores,
                       HypothesisSelector &selector,
                       SearchObserver *observer) const
{
    // Thin dispatcher: one RTTI chain per *utterance* buys a fully
    // devirtualized inner loop for the dominant (unbounded) selector
    // and the adaptive software selectors (all `final`); every other
    // selector runs the same kernel through the virtual interface.
    if (auto *unbounded = dynamic_cast<UnboundedSelector *>(&selector)) {
        return observer
            ? decodeImpl<true>(scores, *unbounded, observer)
            : decodeImpl<false>(scores, *unbounded, nullptr);
    }
    if (auto *rel =
            dynamic_cast<RelativeThresholdSelector *>(&selector)) {
        return observer ? decodeImpl<true>(scores, *rel, observer)
                        : decodeImpl<false>(scores, *rel, nullptr);
    }
    if (auto *adaptive =
            dynamic_cast<AdaptiveBeamSelector *>(&selector)) {
        return observer ? decodeImpl<true>(scores, *adaptive, observer)
                        : decodeImpl<false>(scores, *adaptive, nullptr);
    }
    return observer ? decodeImpl<true>(scores, selector, observer)
                    : decodeImpl<false>(scores, selector, nullptr);
}

ViterbiStream
ViterbiDecoder::startUtterance(HypothesisSelector &selector,
                               SearchObserver *observer) const
{
    return ViterbiStream(*this, selector, observer);
}

ViterbiStream::ViterbiStream(const ViterbiDecoder &decoder,
                             HypothesisSelector &selector,
                             SearchObserver *observer)
    : fst_(&decoder.fst_), config_(decoder.config_),
      selector_(&selector), observer_(observer),
      arena_(decoder.config_.traceGcMinNodes)
{
    active_.push_back({fst_->start(), 0.0f, 0});
    selector_->startUtterance();
    if (observer_)
        observer_->onUtteranceStart(0);
}

void
ViterbiStream::advanceFrames(const AcousticScores &scores,
                             std::size_t begin, std::size_t end)
{
    ds_assert(!finished_);
    ds_assert(begin <= end && end <= scores.frameCount());
    if (dead_)
        return;

    // The same dispatch chain as ViterbiDecoder::decode(), per chunk
    // instead of per utterance: the streaming arm runs the statically
    // bound stepFrame instantiation for every `final` selector.
    if (auto *unbounded =
            dynamic_cast<UnboundedSelector *>(selector_)) {
        advanceImpl(scores, begin, end, *unbounded);
    } else if (auto *rel =
                   dynamic_cast<RelativeThresholdSelector *>(
                       selector_)) {
        advanceImpl(scores, begin, end, *rel);
    } else if (auto *adaptive =
                   dynamic_cast<AdaptiveBeamSelector *>(selector_)) {
        advanceImpl(scores, begin, end, *adaptive);
    } else {
        advanceImpl(scores, begin, end, *selector_);
    }
}

template <typename Sel>
void
ViterbiStream::advanceImpl(const AcousticScores &scores,
                           std::size_t begin, std::size_t end,
                           Sel &selector)
{
    for (std::size_t i = begin; i < end; ++i) {
        const std::size_t t = result_.frames.size();
        FrameActivity &activity = result_.frames.emplace_back();
        bool alive;
        try {
            alive = observer_
                ? stepFrame<true>(*fst_, config_, arena_, active_, next_,
                                  activeBest_, scores.row(i), t, activity,
                                  result_, selector, observer_)
                : stepFrame<false>(*fst_, config_, arena_, active_, next_,
                                   activeBest_, scores.row(i), t, activity,
                                   result_, selector, observer_);
        } catch (...) {
            // A throwing observer (DecodeWatchdog past its deadline)
            // aborts the stream mid-frame; the partial frame's arena
            // state is unusable, so the stream turns terminal and
            // finishUtterance reports the dead-search outcome.
            dead_ = true;
            sealTrace(arena_, result_);
            throw;
        }
        if (!alive) {
            // Search died: same terminal outcome as the batch kernel
            // (empty transcript, +inf cost, no final state).
            dead_ = true;
            sealTrace(arena_, result_);
            if (observer_)
                observer_->onUtteranceEnd(result_.traceStats);
            return;
        }
    }
}

PartialHypothesis
ViterbiStream::partial() const
{
    PartialHypothesis p;
    p.frames = result_.frames.size();
    if (dead_ || finished_ || active_.empty())
        return p;

    const Hypothesis *best = &active_.front();
    for (const auto &h : active_) {
        if (h.cost < best->cost)
            best = &h;
    }
    p.cost = best->cost;

    const auto &nodes = arena_.nodes();
    for (std::uint32_t n = best->trace; n != 0; n = nodes[n].prev)
        p.words.push_back(nodes[n].word - 1);
    std::reverse(p.words.begin(), p.words.end());
    return p;
}

DecodeResult
ViterbiStream::finishUtterance()
{
    ds_assert(!finished_);
    finished_ = true;
    if (dead_)
        return std::move(result_);
    if (result_.frames.empty()) {
        // Batch decode of an empty score matrix returns the default
        // result without touching the arena or the observer.
        return DecodeResult{};
    }
    sealTrace(arena_, result_);
    finalizeBest(*fst_, result_, active_);
    if (observer_)
        observer_->onUtteranceEnd(result_.traceStats);
    return std::move(result_);
}

EditStats
scoreTranscripts(const std::vector<std::vector<WordId>> &results,
                 const std::vector<std::vector<WordId>> &references)
{
    ds_assert(results.size() == references.size());
    EditStats total;
    for (std::size_t i = 0; i < results.size(); ++i)
        total.merge(alignSequences(references[i], results[i]));
    return total;
}

} // namespace darkside
