/**
 * @file
 * SearchObserver implementations that publish decoder activity to the
 * telemetry registry (docs/METRICS.md "search.*" / "selector.*"), plus
 * a tee that lets the telemetry observer ride alongside the hardware
 * simulator on the same decode.
 *
 * Every metric recorded here is deterministic: a decode is serial
 * within one utterance, and all values are integer event counts, so
 * aggregates are invariant under how utterances are spread across
 * worker threads.
 */

#ifndef DARKSIDE_DECODER_SEARCH_TELEMETRY_HH
#define DARKSIDE_DECODER_SEARCH_TELEMETRY_HH

#include "decoder/viterbi_decoder.hh"
#include "telemetry/metrics.hh"

namespace darkside {

/**
 * Publishes per-frame search activity and selector counters to a
 * MetricRegistry. Stateless between utterances; one instance can be
 * reused (or shared across threads — the registry shards writes).
 */
class SearchTelemetry : public SearchObserver
{
  public:
    /** Registers (or re-binds to) the search.* and selector.* metrics
     *  in `registry`. */
    explicit SearchTelemetry(
        telemetry::MetricRegistry &registry =
            telemetry::MetricRegistry::global());

    void onUtteranceStart(std::size_t frames) override;
    void onFrameEnd(const FrameActivity &activity) override;
    void onUtteranceEnd(const TraceStats &trace) override;

  private:
    telemetry::Counter utterances_;
    telemetry::Counter frames_;
    telemetry::Counter generated_;
    telemetry::Counter expanded_;
    telemetry::Counter survivors_;
    telemetry::Counter insertions_;
    telemetry::Counter recombinations_;
    telemetry::Counter collisions_;
    telemetry::Counter backupAccesses_;
    telemetry::Counter overflowAccesses_;
    telemetry::Counter evictions_;
    telemetry::Counter rejections_;
    telemetry::Counter traceAllocated_;
    telemetry::Counter traceCollected_;
    telemetry::Counter traceGcRuns_;
    telemetry::Histogram hypsPerFrame_;
    telemetry::Histogram generatedPerFrame_;
    telemetry::Histogram tracePeakLive_;
};

/**
 * Fans decoder hooks out to two observers (either may be null). Lets a
 * decode feed the accelerator simulator and SearchTelemetry at once
 * without the decoder growing an observer list.
 */
class TeeSearchObserver : public SearchObserver
{
  public:
    TeeSearchObserver(SearchObserver *a, SearchObserver *b)
        : a_(a), b_(b)
    {}

    void
    onUtteranceStart(std::size_t frames) override
    {
        if (a_)
            a_->onUtteranceStart(frames);
        if (b_)
            b_->onUtteranceStart(frames);
    }

    void
    onFrameStart(std::size_t t) override
    {
        if (a_)
            a_->onFrameStart(t);
        if (b_)
            b_->onFrameStart(t);
    }

    void
    onStateExpand(StateId state) override
    {
        if (a_)
            a_->onStateExpand(state);
        if (b_)
            b_->onStateExpand(state);
    }

    void
    onArcTraverse(std::size_t arc_index, const Arc &arc) override
    {
        if (a_)
            a_->onArcTraverse(arc_index, arc);
        if (b_)
            b_->onArcTraverse(arc_index, arc);
    }

    void
    onFrameEnd(const FrameActivity &activity) override
    {
        if (a_)
            a_->onFrameEnd(activity);
        if (b_)
            b_->onFrameEnd(activity);
    }

    void
    onUtteranceEnd(const TraceStats &trace) override
    {
        if (a_)
            a_->onUtteranceEnd(trace);
        if (b_)
            b_->onUtteranceEnd(trace);
    }

  private:
    SearchObserver *a_;
    SearchObserver *b_;
};

} // namespace darkside

#endif // DARKSIDE_DECODER_SEARCH_TELEMETRY_HH
