#include "decoder/lattice.hh"

#include <algorithm>
#include <sstream>

namespace darkside {

void
Lattice::addPath(LatticePath path)
{
    for (auto &existing : paths_) {
        if (existing.words == path.words) {
            // Recombine: a complete path always beats an incomplete
            // one with the same words; otherwise keep the cheaper.
            if (path.complete != existing.complete) {
                if (path.complete)
                    existing = std::move(path);
                return;
            }
            if (path.cost < existing.cost)
                existing = std::move(path);
            return;
        }
    }
    paths_.push_back(std::move(path));
}

namespace {

bool
pathBetter(const LatticePath &a, const LatticePath &b)
{
    if (a.complete != b.complete)
        return a.complete;
    return a.cost < b.cost;
}

} // namespace

std::vector<LatticePath>
Lattice::nBest(std::size_t n) const
{
    std::vector<LatticePath> sorted = paths_;
    std::sort(sorted.begin(), sorted.end(), pathBetter);
    if (sorted.size() > n)
        sorted.resize(n);
    return sorted;
}

const LatticePath &
Lattice::best() const
{
    ds_assert(!paths_.empty());
    return *std::min_element(paths_.begin(), paths_.end(), pathBetter);
}

EditStats
Lattice::oracle(const std::vector<WordId> &reference) const
{
    // Empty-hypothesis baseline: everything deleted.
    EditStats best_stats;
    best_stats.referenceLength = reference.size();
    best_stats.deletions = reference.size();
    for (const auto &path : paths_) {
        const EditStats stats = alignSequences(reference, path.words);
        if (stats.errors() < best_stats.errors())
            best_stats = stats;
    }
    return best_stats;
}

std::string
Lattice::render(std::size_t limit) const
{
    std::ostringstream os;
    for (const auto &path : nBest(limit)) {
        os << (path.complete ? "  " : " ~") << "[" << path.cost << "]";
        for (WordId w : path.words)
            os << " " << w;
        os << "\n";
    }
    return os.str();
}

LatticeDecoder::LatticeDecoder(const Wfst &fst,
                               const DecoderConfig &config)
    : fst_(fst), config_(config)
{}

DecodeResult
LatticeDecoder::decode(const AcousticScores &scores,
                       HypothesisSelector &selector, Lattice &lattice,
                       SearchObserver *observer) const
{
    const ViterbiDecoder decoder(fst_, config_);
    DecodeResult result = decoder.decode(scores, selector, observer);

    // Every final-frame survivor is an alternative transcription; a
    // survivor ending in a final WFST state is a complete sentence and
    // absorbs the final cost, others are marked incomplete.
    for (const auto &token : result.finalTokens) {
        LatticePath path;
        path.words = result.backtrace(token.trace);
        const float final_cost = fst_.finalCost(token.state);
        if (final_cost != kInfinityCost) {
            path.complete = true;
            path.cost = token.cost + final_cost;
        } else {
            path.complete = false;
            path.cost = token.cost;
        }
        lattice.addPath(std::move(path));
    }
    return result;
}

} // namespace darkside
