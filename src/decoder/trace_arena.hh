/**
 * @file
 * Backpointer arena for the Viterbi search with periodic mark-compact
 * garbage collection. The seed decoder kept one TraceNode per word
 * emission ever generated — live or dead — so trace memory grew with
 * *generated* hypotheses (the quantity pruning explodes, Fig. 4). The
 * arena bounds it by *live* hypotheses instead: when the node pool
 * exceeds an adaptive threshold, the chains reachable from the active
 * tokens are marked and compacted in place.
 *
 * Invariants the collector relies on:
 *  - node 0 is the sentence-start sentinel and is always live;
 *  - `prev < self` for every node (a node's predecessor is appended
 *    strictly earlier), so one forward pass over the pool both
 *    compacts and remaps without recursion, and compaction is stable
 *    (surviving nodes keep their relative order).
 *
 * Collection only moves nodes; it never changes which (word, prev)
 * chains exist, so the decoded words, costs and per-frame counters
 * are bit-identical to the append-only seed behaviour.
 */

#ifndef DARKSIDE_DECODER_TRACE_ARENA_HH
#define DARKSIDE_DECODER_TRACE_ARENA_HH

#include <cstdint>
#include <vector>

#include "nbest/hypothesis.hh"
#include "wfst/wfst.hh"

namespace darkside {

/** One node of the backtrace arena: a word emission on a partial path. */
struct TraceNode
{
    /** Emitted word label (olabel, i.e. word id + 1). */
    OutLabel word;
    /** Index of the previous emission on the path (0 = start). */
    std::uint32_t prev;
};

/** Lifetime accounting of one utterance's trace arena
 *  (docs/METRICS.md "decode.trace.*"). */
struct TraceStats
{
    /** Trace nodes ever appended (excluding the start sentinel). */
    std::uint64_t allocated = 0;
    /** Dead nodes reclaimed by mark-compact collections. */
    std::uint64_t collected = 0;
    /** Largest node-pool size observed (live bound on trace memory). */
    std::uint64_t peakLive = 0;
    /** Mark-compact collections run. */
    std::uint64_t gcRuns = 0;
};

/**
 * Append-mostly trace-node pool with mark-compact collection rooted at
 * the active tokens. Collection rewrites the roots' trace handles in
 * place; all other outstanding handles become invalid, which is why
 * the decoder only collects at frame boundaries, after the survivor
 * set is the sole owner of live handles.
 */
class TraceArena
{
  public:
    /** @param gc_min_nodes pool size below which collection is never
     *  attempted (amortises the mark cost; 1 forces a collection at
     *  every opportunity, which the GC stress test uses). */
    explicit TraceArena(std::size_t gc_min_nodes)
        : threshold_(gc_min_nodes < 1 ? 1 : gc_min_nodes),
          minNodes_(threshold_)
    {
        nodes_.push_back({kEpsilon, 0});
    }

    /** Append a word emission; @return its trace handle. */
    std::uint32_t
    append(OutLabel word, std::uint32_t prev)
    {
        const auto node = static_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back({word, prev});
        ++stats_.allocated;
        return node;
    }

    /**
     * Collect if the pool outgrew the adaptive threshold. Remaps the
     * trace handle of every hypothesis in `roots` in place; any other
     * handle into the arena is invalidated.
     */
    void
    maybeCollect(std::vector<Hypothesis> &roots)
    {
        if (nodes_.size() < threshold_)
            return;
        notePeak();

        // Mark: walk each root's prev-chain until an already-live
        // node. Chains share suffixes, so the total mark work is
        // bounded by the live-node count, not roots x depth.
        live_.assign(nodes_.size(), 0);
        live_[0] = 1;
        for (const auto &root : roots) {
            for (std::uint32_t n = root.trace; !live_[n];
                 n = nodes_[n].prev)
                live_[n] = 1;
        }

        // Compact: prev < self means every predecessor is remapped
        // before it is referenced, so one forward pass suffices.
        remap_.resize(nodes_.size());
        std::uint32_t out = 0;
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(nodes_.size()); ++i) {
            if (!live_[i])
                continue;
            remap_[i] = out;
            nodes_[out] = {nodes_[i].word, remap_[nodes_[i].prev]};
            ++out;
        }
        for (auto &root : roots)
            root.trace = remap_[root.trace];

        stats_.collected += nodes_.size() - out;
        ++stats_.gcRuns;
        nodes_.resize(out);
        // Grow the threshold with the live set so steady-state decodes
        // collect when the pool has roughly doubled, keeping the GC
        // cost amortised O(1) per appended node. A floor of 1 opts out
        // of the amortisation and collects at every opportunity (the
        // GC stress configuration).
        if (minNodes_ > 1) {
            threshold_ = minNodes_ > 2 * static_cast<std::size_t>(out)
                ? minNodes_
                : 2 * static_cast<std::size_t>(out);
        }
    }

    /** Final peak accounting; call once, when the decode ends. */
    void finish() { notePeak(); }

    /** Read-only view of the node pool, for partial backtraces of an
     *  in-flight streaming decode. Handles into the pool are only
     *  stable until the next maybeCollect(). */
    const std::vector<TraceNode> &nodes() const { return nodes_; }

    const TraceStats &stats() const { return stats_; }

    /** Hand the node pool to the DecodeResult (arena is spent). */
    std::vector<TraceNode> release() { return std::move(nodes_); }

  private:
    void
    notePeak()
    {
        if (nodes_.size() > stats_.peakLive)
            stats_.peakLive = nodes_.size();
    }

    std::vector<TraceNode> nodes_;
    std::vector<std::uint8_t> live_;
    std::vector<std::uint32_t> remap_;
    std::size_t threshold_;
    std::size_t minNodes_;
    TraceStats stats_;
};

} // namespace darkside

#endif // DARKSIDE_DECODER_TRACE_ARENA_HH
