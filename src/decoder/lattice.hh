/**
 * @file
 * Word lattice and N-best transcript extraction. The hardware decoder
 * (UNFOLD) writes word-lattice records as it searches; this module is
 * the software equivalent: it captures the alternative word sequences
 * that survived to the end of the utterance, ranks them, and supports
 * the oracle-WER analysis used when sizing the N-best hash (how much
 * accuracy headroom the surviving hypotheses actually contain).
 */

#ifndef DARKSIDE_DECODER_LATTICE_HH
#define DARKSIDE_DECODER_LATTICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "decoder/viterbi_decoder.hh"

namespace darkside {

/** One ranked lattice path. */
struct LatticePath
{
    std::vector<WordId> words;
    /** Total path cost including the final-state cost. */
    double cost = 0.0;
    /** True when the path ended in a final WFST state. */
    bool complete = false;
};

/**
 * A bag of alternative transcriptions of one utterance.
 */
class Lattice
{
  public:
    /** Build an empty lattice. */
    Lattice() = default;

    /** Add a candidate path (recombined by word sequence, min cost). */
    void addPath(LatticePath path);

    /** Number of distinct word sequences stored. */
    std::size_t pathCount() const { return paths_.size(); }

    /**
     * The n cheapest distinct paths, best first. Complete paths are
     * preferred over incomplete ones at equal cost.
     */
    std::vector<LatticePath> nBest(std::size_t n) const;

    /** The single best path; requires a non-empty lattice. */
    const LatticePath &best() const;

    /**
     * Oracle WER: the minimum word error rate achievable by choosing
     * the best-matching path for the given reference.
     */
    EditStats oracle(const std::vector<WordId> &reference) const;

    /** Render the top paths for debugging/reports. */
    std::string render(std::size_t limit = 5) const;

  private:
    std::vector<LatticePath> paths_;
};

/**
 * Decoder wrapper that retains the full set of end-of-utterance
 * hypotheses as a lattice instead of only the single best path.
 */
class LatticeDecoder
{
  public:
    LatticeDecoder(const Wfst &fst, const DecoderConfig &config);

    /**
     * Decode and build the lattice of distinct word sequences held by
     * the final frame's surviving hypotheses.
     *
     * @param scores acoustic costs
     * @param selector survival policy
     * @param lattice receives the alternatives
     * @param observer optional search hooks (telemetry, simulators)
     * @return the standard decode result (best path, activity)
     */
    DecodeResult decode(const AcousticScores &scores,
                        HypothesisSelector &selector, Lattice &lattice,
                        SearchObserver *observer = nullptr) const;

  private:
    const Wfst &fst_;
    DecoderConfig config_;
};

} // namespace darkside

#endif // DARKSIDE_DECODER_LATTICE_HH
