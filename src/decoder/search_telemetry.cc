#include "decoder/search_telemetry.hh"

namespace darkside {

SearchTelemetry::SearchTelemetry(telemetry::MetricRegistry &registry)
    : utterances_(registry.counter("search.utterances", "utterances")),
      frames_(registry.counter("search.frames", "frames")),
      generated_(registry.counter("search.generated", "hypotheses")),
      expanded_(registry.counter("search.expanded", "tokens")),
      survivors_(registry.counter("search.survivors", "hypotheses")),
      insertions_(
          registry.counter("selector.insertions", "hypotheses")),
      recombinations_(
          registry.counter("selector.recombinations", "hypotheses")),
      collisions_(registry.counter("selector.collisions", "hypotheses")),
      backupAccesses_(
          registry.counter("selector.backup_accesses", "accesses")),
      overflowAccesses_(
          registry.counter("selector.overflow_accesses", "accesses")),
      evictions_(registry.counter("selector.evictions", "hypotheses")),
      rejections_(registry.counter("selector.rejections", "hypotheses")),
      traceAllocated_(
          registry.counter("decode.trace.allocated", "nodes")),
      traceCollected_(
          registry.counter("decode.trace.collected", "nodes")),
      traceGcRuns_(
          registry.counter("decode.trace.gc_runs", "collections")),
      hypsPerFrame_(registry.histogram("search.hypotheses_per_frame",
                                       "hypotheses", {0.0, 2048.0, 64})),
      generatedPerFrame_(
          registry.histogram("search.generated_per_frame", "hypotheses",
                             {0.0, 8192.0, 64})),
      tracePeakLive_(registry.histogram("decode.trace.peak_live",
                                        "nodes", {0.0, 32768.0, 64}))
{}

void
SearchTelemetry::onUtteranceStart(std::size_t frames)
{
    utterances_.add(1);
    frames_.add(frames);
}

void
SearchTelemetry::onFrameEnd(const FrameActivity &activity)
{
    generated_.add(activity.generated);
    expanded_.add(activity.expanded);
    survivors_.add(activity.survivors);
    insertions_.add(activity.selector.insertions);
    recombinations_.add(activity.selector.recombinations);
    collisions_.add(activity.selector.collisions);
    backupAccesses_.add(activity.selector.backupAccesses);
    overflowAccesses_.add(activity.selector.overflowAccesses);
    evictions_.add(activity.selector.evictions);
    rejections_.add(activity.selector.rejections);
    hypsPerFrame_.observe(static_cast<double>(activity.survivors));
    generatedPerFrame_.observe(static_cast<double>(activity.generated));
}

void
SearchTelemetry::onUtteranceEnd(const TraceStats &trace)
{
    traceAllocated_.add(trace.allocated);
    traceCollected_.add(trace.collected);
    traceGcRuns_.add(trace.gcRuns);
    tracePeakLive_.observe(static_cast<double>(trace.peakLive));
}

} // namespace darkside
