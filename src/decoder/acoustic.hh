/**
 * @file
 * Acoustic score container: per-frame DNN posteriors converted to the
 * log-space costs the Viterbi search consumes. As in Kaldi, costs are
 * scaled by an acoustic scale balancing them against LM weights.
 */

#ifndef DARKSIDE_DECODER_ACOUSTIC_HH
#define DARKSIDE_DECODER_ACOUSTIC_HH

#include <string>
#include <vector>

#include "corpus/phoneme.hh"
#include "dnn/inference.hh"
#include "dnn/mlp.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"

namespace darkside {

/**
 * Immutable per-utterance acoustic cost matrix.
 */
class AcousticScores
{
  public:
    /**
     * Build from raw posterior vectors.
     * @param posteriors one probability vector per frame
     * @param scale acoustic scale applied to -log p
     */
    static AcousticScores fromPosteriors(
        const std::vector<Vector> &posteriors, float scale);

    /**
     * Score every spliced frame with the given acoustic model. Compiles
     * a one-shot InferenceEngine; callers scoring many utterances with
     * the same model should compile an engine once and use fromEngine.
     *
     * @param mlp the (possibly pruned) acoustic model
     * @param inputs spliced feature vectors (one per frame)
     * @param scale acoustic scale
     */
    static AcousticScores fromMlp(const Mlp &mlp,
                                  const std::vector<Vector> &inputs,
                                  float scale);

    /**
     * Score every spliced frame with a pre-compiled engine. With a pool,
     * frame windows are scored in parallel; posteriors are merged in
     * frame order, so results are identical for any thread count.
     */
    static AcousticScores fromEngine(const InferenceEngine &engine,
                                     const std::vector<Vector> &inputs,
                                     float scale,
                                     ThreadPool *pool = nullptr);

    /**
     * A score matrix filled with NaN costs, modelling a corrupted
     * scoring stage (the inference.scores nan_scores fault). Never
     * cache-inserted; finite() detects it before decoding.
     */
    static AcousticScores poisoned(std::size_t frames,
                                   std::size_t classes);

    /** True when every cost is finite (no NaN/Inf corruption). */
    bool finite() const;

    std::size_t frameCount() const
    {
        return classes_ == 0 ? 0 : costs_.size() / classes_;
    }

    std::size_t classCount() const { return classes_; }

    /** Cost of sub-phoneme `pdf` at `frame` (scale * -log p). */
    float cost(std::size_t frame, PdfId pdf) const
    {
        ds_assert(frame < frameCount());
        ds_assert(pdf < classes_);
        return costs_[frame * classes_ + pdf];
    }

    /**
     * The contiguous cost row of one frame (classCount() entries).
     * Decode hot path: hoisting the row turns the per-arc score lookup
     * into a single indexed load.
     */
    const float *row(std::size_t frame) const
    {
        ds_assert(frame < frameCount());
        return costs_.data() + frame * classes_;
    }

    /** Mean confidence (max posterior) over the utterance's frames. */
    double meanConfidence() const { return meanConfidence_; }

    /**
     * Serialise to bytes for the persistent score cache: costs,
     * class count and mean confidence round-trip bit-exactly, so a
     * decode over restored scores is byte-identical to one over
     * freshly computed scores (docs/STORE.md).
     */
    std::string serialize() const;

    /** Restore serialize() output; Status error on malformed bytes.
     *  @param context names the source in error messages. */
    static Result<AcousticScores> deserialize(
        const std::string &bytes, const std::string &context);

  private:
    friend class Result<AcousticScores>;

    AcousticScores() = default;

    std::vector<float> costs_;
    std::size_t classes_ = 0;
    double meanConfidence_ = 0.0;
};

} // namespace darkside

#endif // DARKSIDE_DECODER_ACOUSTIC_HH
