/**
 * @file
 * Acoustic score container: per-frame DNN posteriors converted to the
 * log-space costs the Viterbi search consumes. As in Kaldi, costs are
 * scaled by an acoustic scale balancing them against LM weights.
 */

#ifndef DARKSIDE_DECODER_ACOUSTIC_HH
#define DARKSIDE_DECODER_ACOUSTIC_HH

#include <string>
#include <vector>

#include "corpus/phoneme.hh"
#include "dnn/inference.hh"
#include "dnn/mlp.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"

namespace darkside {

/**
 * Immutable per-utterance acoustic cost matrix.
 */
class AcousticScores
{
  public:
    /**
     * Build from raw posterior vectors.
     * @param posteriors one probability vector per frame
     * @param scale acoustic scale applied to -log p
     */
    static AcousticScores fromPosteriors(
        const std::vector<Vector> &posteriors, float scale);

    /**
     * Score every spliced frame with the given acoustic model. Compiles
     * a one-shot InferenceEngine; callers scoring many utterances with
     * the same model should compile an engine once and use fromEngine.
     *
     * @param mlp the (possibly pruned) acoustic model
     * @param inputs spliced feature vectors (one per frame)
     * @param scale acoustic scale
     */
    static AcousticScores fromMlp(const Mlp &mlp,
                                  const std::vector<Vector> &inputs,
                                  float scale);

    /**
     * Score every spliced frame with a pre-compiled engine. With a pool,
     * frame windows are scored in parallel; posteriors are merged in
     * frame order, so results are identical for any thread count.
     */
    static AcousticScores fromEngine(const InferenceEngine &engine,
                                     const std::vector<Vector> &inputs,
                                     float scale,
                                     ThreadPool *pool = nullptr);

    /**
     * A score matrix filled with NaN costs, modelling a corrupted
     * scoring stage (the inference.scores nan_scores fault). Never
     * cache-inserted; finite() detects it before decoding.
     */
    static AcousticScores poisoned(std::size_t frames,
                                   std::size_t classes);

    /** True when every cost is finite (no NaN/Inf corruption). */
    bool finite() const;

    std::size_t frameCount() const
    {
        return classes_ == 0 ? 0 : costs_.size() / classes_;
    }

    std::size_t classCount() const { return classes_; }

    /** Cost of sub-phoneme `pdf` at `frame` (scale * -log p). */
    float cost(std::size_t frame, PdfId pdf) const
    {
        ds_assert(frame < frameCount());
        ds_assert(pdf < classes_);
        return costs_[frame * classes_ + pdf];
    }

    /**
     * The contiguous cost row of one frame (classCount() entries).
     * Decode hot path: hoisting the row turns the per-arc score lookup
     * into a single indexed load.
     */
    const float *row(std::size_t frame) const
    {
        ds_assert(frame < frameCount());
        return costs_.data() + frame * classes_;
    }

    /** Mean confidence (max posterior) over the utterance's frames. */
    double meanConfidence() const { return meanConfidence_; }

    /**
     * Serialise to bytes for the persistent score cache: costs,
     * class count and mean confidence round-trip bit-exactly, so a
     * decode over restored scores is byte-identical to one over
     * freshly computed scores (docs/STORE.md).
     */
    std::string serialize() const;

    /** Restore serialize() output; Status error on malformed bytes.
     *  @param context names the source in error messages. */
    static Result<AcousticScores> deserialize(
        const std::string &bytes, const std::string &context);

  private:
    friend class Result<AcousticScores>;
    friend class ScoreMatrixBuilder;

    AcousticScores() = default;

    std::vector<float> costs_;
    std::size_t classes_ = 0;
    double meanConfidence_ = 0.0;
};

/**
 * Incrementally fills one AcousticScores matrix, frame window by frame
 * window — the scoring seam of the pipelined streaming server: decode
 * can consume rows [0, scoredFrames()) while later windows are still
 * being scored.
 *
 * Bit-identity contract: once every frame is scored, the matrix
 * (costs, class count, mean confidence) is bit-identical to
 * AcousticScores::fromEngine over the same inputs, for ANY sequence of
 * scoreTo() boundaries. This holds because the MLP is stateless per
 * frame — the batched GEMM windows are themselves bit-identical to
 * per-frame forward (dnn/inference.hh) — and because this builder
 * replays fromPosteriors' exact per-frame cost/confidence arithmetic
 * in frame order.
 *
 * Concurrency: the cost matrix is fully allocated up front, so row
 * pointers never move while windows are appended. One thread may call
 * scoreTo() while another reads rows below a boundary it learned
 * through external synchronisation (ScoreStream provides it); writes
 * and reads then touch disjoint rows.
 *
 * Not itself thread-safe: at most one thread calls scoreTo() at a
 * time. The engine and inputs are borrowed and must outlive the
 * builder.
 */
class ScoreMatrixBuilder
{
  public:
    ScoreMatrixBuilder(const InferenceEngine &engine,
                       const std::vector<Vector> &inputs, float scale);

    std::size_t frameCount() const { return total_; }
    std::size_t scoredFrames() const { return scored_; }
    bool complete() const { return scored_ == total_; }

    /**
     * Score frames [scoredFrames(), upTo); no-op when already past
     * upTo. @return false when a newly scored cost is non-finite (the
     * caller abandons the utterance, as the batch path does on a
     * failed finite() check).
     */
    bool scoreTo(std::size_t upTo);

    /** The growing matrix. Rows below scoredFrames() are final; rows
     *  at or above it are NaN placeholders. Stable address. */
    const AcousticScores &matrix() const { return scores_; }

    /** Finalise and move the matrix out; requires complete(). */
    AcousticScores take() &&;

  private:
    const InferenceEngine *engine_;
    const std::vector<Vector> *inputs_;
    float scale_;
    std::size_t total_;
    std::size_t scored_ = 0;
    /** Running sum of per-frame peak posteriors, accumulated in frame
     *  order so the final mean is bit-identical to fromPosteriors. */
    double confidenceSum_ = 0.0;
    InferenceWorkspace ws_;
    /** Window scratch: posteriors_[f] is freed once converted, so live
     *  memory stays one window of posteriors, not the utterance. */
    std::vector<Vector> posteriors_;
    AcousticScores scores_;
};

} // namespace darkside

#endif // DARKSIDE_DECODER_ACOUSTIC_HH
