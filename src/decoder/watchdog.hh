/**
 * @file
 * Cooperative per-decode watchdog. The Viterbi decoder has no
 * preemption, but it reports every frame boundary to its observer;
 * the watchdog checks the deadline there and aborts an overrunning
 * decode by throwing FaultError(decoder.decode, timeout), which the
 * per-utterance isolation boundary converts into a degraded
 * utterance. An injected timeout fault reuses the same machinery by
 * arming the watchdog already expired, so the injection exercises the
 * real abort path instead of a shortcut.
 */

#ifndef DARKSIDE_DECODER_WATCHDOG_HH
#define DARKSIDE_DECODER_WATCHDOG_HH

#include <chrono>
#include <cstdint>

#include "decoder/viterbi_decoder.hh"
#include "fault/fault.hh"

namespace darkside {

class DecodeWatchdog : public SearchObserver
{
  public:
    /**
     * @param seconds deadline budget; 0 disables the watchdog,
     *        negative arms it already expired (timeout injection)
     * @param key the utterance id reported in the FaultError
     */
    DecodeWatchdog(double seconds, std::uint64_t key)
        : enabled_(seconds != 0.0), expired_(seconds < 0.0), key_(key)
    {
        if (seconds > 0.0) {
            deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
        }
    }

    /** False when the budget is 0; skip attaching the observer. */
    bool enabled() const { return enabled_; }

    void
    onFrameStart(std::size_t) override
    {
        if (expired_ ||
            std::chrono::steady_clock::now() >= deadline_)
            throw FaultError("decoder.decode", FaultKind::Timeout, key_);
    }

  private:
    bool enabled_;
    bool expired_;
    std::uint64_t key_;
    std::chrono::steady_clock::time_point deadline_{
        std::chrono::steady_clock::time_point::max()};
};

} // namespace darkside

#endif // DARKSIDE_DECODER_WATCHDOG_HH
