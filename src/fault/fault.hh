/**
 * @file
 * Deterministic fault injection (docs/FAULTS.md).
 *
 * A FaultPlan maps named *probe points* — fixed call sites registered
 * across the pipeline (loaders, the scoring stage, the score cache,
 * the decoder, the thread pool) — to fault kinds with per-point
 * trigger schedules. Probes fire on (probe, key) pairs where the key
 * is a stable scope identifier (utterance id, pruning level, loop
 * index), so whether a given fault fires is a pure function of the
 * plan and the key: replaying the same plan over the same inputs
 * reproduces the exact same fault sites, independent of thread count
 * or scheduling (the one documented exception is pool.chunk, whose
 * keys are chunk offsets that depend on the worker count).
 *
 * The injector only *decides*; each probe site implements its own
 * documented reaction — return a Status error, poison scores, discard
 * a cache entry, or throw FaultError for the per-utterance isolation
 * boundary in AsrSystem::runTestSet to convert into a degraded
 * utterance. Outcomes are counted in the fault.* telemetry namespace.
 */

#ifndef DARKSIDE_FAULT_FAULT_HH
#define DARKSIDE_FAULT_FAULT_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/status.hh"

namespace darkside {

/** The injectable fault kinds. */
enum class FaultKind : std::uint8_t {
    /** I/O returned fewer bytes than asked (truncated/partial read). */
    ShortRead,
    /** Acoustic scores poisoned with NaN/Inf. */
    NanScores,
    /** Allocation failure at the probe site. */
    AllocFail,
    /** The guarded task exceeded its deadline. */
    Timeout,
    /** A cached entry is corrupt and must not be trusted. */
    CorruptCache,
    /** A write-side I/O operation (fsync, rename, full write) failed. */
    IoError,
};

/** Plan-file spelling of a kind ("short_read", ...). */
const char *faultKindName(FaultKind kind);

/**
 * Stable 64-bit key for probes whose natural scope is a string (model
 * paths). FNV-1a, so plans can precompute keys for known inputs.
 */
std::uint64_t faultKey(const std::string &text);

/** Parse a plan-file kind name. @return false on unknown names. */
bool faultKindFromName(const std::string &name, FaultKind *kind);

/**
 * One registered probe point. The registry is the contract the
 * fault-matrix test suite (tests/fault_test.cc) iterates: every
 * (probe, supported kind) pair has a documented outcome.
 */
struct ProbePoint
{
    /** Dotted name, e.g. "decoder.decode". */
    const char *name;
    /** Kinds this site knows how to inject. */
    std::vector<FaultKind> kinds;
    /**
     * False when the probe's keys depend on execution geometry
     * (pool.chunk): its injections are excluded from the deterministic
     * fault.injected counter.
     */
    bool deterministic;
    /** Documented reaction, one line. */
    const char *outcome;
};

/** All registered probe points, in registry order. */
const std::vector<ProbePoint> &probeRegistry();

/** Registry entry by name; nullptr when unknown. */
const ProbePoint *findProbe(const std::string &name);

/**
 * One rule of a plan: a probe, a kind, and exactly one trigger
 * schedule (or none, meaning "every hit").
 */
struct FaultRule
{
    std::string probe;
    FaultKind kind = FaultKind::ShortRead;
    /** Fire exactly for these keys. */
    std::vector<std::uint64_t> keys;
    /** Fire when key % every == phase (0 = off). */
    std::uint64_t every = 0;
    std::uint64_t phase = 0;
    /** Fire with this probability per key (seeded hash coin; 0 = off). */
    double probability = 0.0;
    /** Fire on the first N *hits* of this rule, then stop (0 = off).
     *  Count-based: only meaningful on serially-executed probes
     *  (the load paths); used to model transient I/O faults that a
     *  retry loop outlasts. */
    std::uint64_t failCount = 0;
};

/**
 * A parsed, validated fault plan ("darkside-fault-plan-v1", see
 * docs/FAULTS.md for the JSON format).
 */
struct FaultPlan
{
    std::uint64_t seed = 0;
    std::vector<FaultRule> rules;

    /** Parse + validate a JSON plan document. */
    static Result<FaultPlan> parseJson(const std::string &text);

    /** Read + parse a plan file. */
    static Result<FaultPlan> loadFile(const std::string &path);
};

/**
 * Thrown at probe sites whose only graceful reaction is to abandon
 * the current unit of work. The per-utterance isolation boundary
 * (AsrSystem::runTestSet, the decode CLI loop) catches it and records
 * the utterance as degraded with this cause; FaultError escaping past
 * that boundary is a plan targeting a coarser-grained probe
 * (pool.chunk) and fails the whole call, by design.
 */
class FaultError : public std::runtime_error
{
  public:
    FaultError(std::string probe, FaultKind kind, std::uint64_t key);

    const std::string &probe() const { return probe_; }
    FaultKind kind() const { return kind_; }
    std::uint64_t key() const { return key_; }

  private:
    std::string probe_;
    FaultKind kind_;
    std::uint64_t key_;
};

/**
 * Process-wide injector the probe sites query. Disarmed (the default)
 * every trigger() is a single relaxed atomic load; armed, a trigger
 * scans the plan's rules for the probe and fires at most one fault.
 */
class FaultInjector
{
  public:
    static FaultInjector &global();

    FaultInjector() = default;
    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Install a plan (replacing any previous one) and reset the
     * per-rule hit counters. Registers the fault.* counters so they
     * appear in snapshots even before the first fault fires.
     */
    void arm(FaultPlan plan);

    /** Remove the plan; probes stop firing. */
    void disarm();

    bool armed() const;

    /**
     * Should a fault fire at this probe site for this key?
     * Counts fault.injected (deterministic probes) and
     * fault.injected.<probe> on a hit.
     */
    std::optional<FaultKind> trigger(const char *probe,
                                     std::uint64_t key);

    /** Count a retry of a faulted operation (fault.retried). */
    void noteRetried();

    /** Count an operation that succeeded after faults (fault.recovered). */
    void noteRecovered();

    /** Count an utterance recorded as degraded (fault.degraded). */
    void noteDegraded();

  private:
    struct ArmedPlan
    {
        FaultPlan plan;
        /** Hits so far, per rule (failCount schedules). */
        std::vector<std::atomic<std::uint64_t>> hits;
    };

    std::atomic<bool> armed_{false};
    /** Shared so a disarm cannot free a plan under a reader. */
    std::shared_ptr<ArmedPlan> plan_;
    mutable std::mutex mutex_;
};

/** RAII plan for tests: arms on construction, disarms on destruction. */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(FaultPlan plan)
    {
        FaultInjector::global().arm(std::move(plan));
    }

    ScopedFaultPlan(const ScopedFaultPlan &) = delete;
    ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;

    ~ScopedFaultPlan() { FaultInjector::global().disarm(); }
};

} // namespace darkside

#endif // DARKSIDE_FAULT_FAULT_HH
