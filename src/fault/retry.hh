/**
 * @file
 * Retry-with-exponential-backoff for transient faults (I/O short
 * reads, corrupt cache entries). The policy bounds total attempts;
 * callers decide what to do when the budget is exhausted (the model
 * zoo falls back to training, loaders surface the final Status).
 * Retries and eventual recoveries are counted in fault.retried /
 * fault.recovered.
 */

#ifndef DARKSIDE_FAULT_RETRY_HH
#define DARKSIDE_FAULT_RETRY_HH

#include <chrono>
#include <cstddef>
#include <thread>
#include <utility>

#include "fault/fault.hh"

namespace darkside {

/** Backoff shape for retryWithBackoff. */
struct RetryPolicy
{
    /** Total attempts, including the first (>= 1). */
    std::size_t maxAttempts = 3;
    /** Sleep before the first retry; doubled per further retry. */
    std::chrono::microseconds initialBackoff{100};
};

/**
 * Run `fn` (returning Status or Result<T>) until it succeeds or the
 * attempt budget is spent; sleeps an exponentially growing backoff
 * between attempts. @return the last attempt's result.
 */
template <typename Fn>
auto
retryWithBackoff(const RetryPolicy &policy, Fn &&fn) -> decltype(fn())
{
    auto backoff = policy.initialBackoff;
    for (std::size_t attempt = 1;; ++attempt) {
        auto result = fn();
        if (result.isOk()) {
            if (attempt > 1)
                FaultInjector::global().noteRecovered();
            return result;
        }
        if (attempt >= policy.maxAttempts || policy.maxAttempts == 0)
            return result;
        FaultInjector::global().noteRetried();
        std::this_thread::sleep_for(backoff);
        backoff *= 2;
    }
}

} // namespace darkside

#endif // DARKSIDE_FAULT_RETRY_HH
