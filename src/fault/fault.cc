#include "fault/fault.hh"

#include <fstream>
#include <sstream>

#include "telemetry/metrics.hh"
#include "util/bits.hh"
#include "util/json.hh"

namespace darkside {

namespace {

/** FNV-1a over a probe name; folded into the trigger hash coin. */
std::uint64_t
hashName(const char *name)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char *p = name; *p; ++p) {
        h ^= static_cast<std::uint8_t>(*p);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** The four always-registered outcome counters. */
struct FaultMetrics
{
    telemetry::Counter injected;
    telemetry::Counter retried;
    telemetry::Counter recovered;
    telemetry::Counter degraded;

    static const FaultMetrics &
    get()
    {
        static const FaultMetrics m = [] {
            auto &reg = telemetry::MetricRegistry::global();
            FaultMetrics fm;
            fm.injected = reg.counter("fault.injected", "faults");
            fm.retried = reg.counter("fault.retried", "attempts");
            fm.recovered = reg.counter("fault.recovered", "operations");
            fm.degraded = reg.counter("fault.degraded", "utterances");
            return fm;
        }();
        return m;
    }
};

} // namespace

std::uint64_t
faultKey(const std::string &text)
{
    return hashName(text.c_str());
}

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::ShortRead:
        return "short_read";
      case FaultKind::NanScores:
        return "nan_scores";
      case FaultKind::AllocFail:
        return "alloc_fail";
      case FaultKind::Timeout:
        return "timeout";
      case FaultKind::CorruptCache:
        return "corrupt_cache";
      case FaultKind::IoError:
        return "io_error";
    }
    return "?";
}

bool
faultKindFromName(const std::string &name, FaultKind *kind)
{
    for (FaultKind k :
         {FaultKind::ShortRead, FaultKind::NanScores, FaultKind::AllocFail,
          FaultKind::Timeout, FaultKind::CorruptCache,
          FaultKind::IoError}) {
        if (name == faultKindName(k)) {
            *kind = k;
            return true;
        }
    }
    return false;
}

const std::vector<ProbePoint> &
probeRegistry()
{
    // The probe-point contract (docs/FAULTS.md mirrors this table; the
    // fault-matrix suite iterates it). Keys, per probe:
    //   dnn.model_load   hash of the file path
    //   zoo.model_load   pruning level (0..3)
    //   corpus.splice    utterance id
    //   inference.scores utterance id
    //   system.score_cache utterance id (fires on cache hits)
    //   decoder.decode   utterance id
    //   pool.chunk       chunk begin index (worker-count dependent)
    //   store.torn_write   hash of the artifact's store-relative name
    //   store.fsync_fail   hash of the artifact's store-relative name
    //   store.rename_fail  hash of the artifact's store-relative name
    //   serve.admit_drop   utterance id
    //   serve.chunk_stall  utterance id
    //   serve.checkpoint_torn hash of the journal unit's
    //                         store-relative name
    static const std::vector<ProbePoint> registry = {
        {"dnn.model_load",
         {FaultKind::ShortRead},
         true,
         "tryLoad returns a Status error; load() stays fatal"},
        {"zoo.model_load",
         {FaultKind::ShortRead, FaultKind::CorruptCache},
         true,
         "cache load retried with backoff; persistent faults fall "
         "back to training"},
        {"corpus.splice",
         {FaultKind::ShortRead, FaultKind::AllocFail},
         true,
         "utterance degraded at the isolation boundary"},
        {"inference.scores",
         {FaultKind::NanScores, FaultKind::AllocFail},
         true,
         "NaN scores detected and the utterance degraded; allocation "
         "failure degraded at the isolation boundary"},
        {"system.score_cache",
         {FaultKind::CorruptCache},
         true,
         "hit entry discarded and recomputed (recovered)"},
        {"decoder.decode",
         {FaultKind::Timeout, FaultKind::AllocFail},
         true,
         "utterance degraded at the isolation boundary"},
        {"pool.chunk",
         {FaultKind::AllocFail, FaultKind::Timeout},
         false,
         "parallelFor finishes remaining chunks, then rethrows to the "
         "caller; the pool survives"},
        {"store.torn_write",
         {FaultKind::IoError},
         true,
         "payload silently truncated before commit; the next read "
         "fails CRC verification and quarantines the artifact"},
        {"store.fsync_fail",
         {FaultKind::IoError},
         true,
         "write returns a Status error; the temp file is removed and "
         "the final path is untouched"},
        {"store.rename_fail",
         {FaultKind::IoError},
         true,
         "commit returns a Status error; the temp file is removed and "
         "the final path is untouched"},
        {"serve.admit_drop",
         {FaultKind::AllocFail},
         true,
         "offer refused before admission and counted under "
         "serve.shed.injected; nothing runs"},
        {"serve.chunk_stall",
         {FaultKind::Timeout},
         true,
         "session degrades at the stalled chunk boundary; healthy "
         "neighbours unaffected"},
        {"serve.checkpoint_torn",
         {FaultKind::IoError},
         true,
         "committed journal unit truncated in place; the next load "
         "quarantines it and the session is recomputed"},
    };
    return registry;
}

const ProbePoint *
findProbe(const std::string &name)
{
    for (const ProbePoint &p : probeRegistry()) {
        if (name == p.name)
            return &p;
    }
    return nullptr;
}

// ---------------------------------------------------------------------
// FaultPlan parsing
// ---------------------------------------------------------------------

namespace {

/** Validate one parsed rule against the registry. */
Status
validateRule(const FaultRule &rule)
{
    const ProbePoint *probe = findProbe(rule.probe);
    if (!probe)
        return Status::error("unknown probe point '" + rule.probe + "'");
    bool supported = false;
    for (FaultKind k : probe->kinds)
        supported = supported || k == rule.kind;
    if (!supported) {
        return Status::error(std::string("probe '") + rule.probe +
                             "' does not support fault kind '" +
                             faultKindName(rule.kind) + "'");
    }
    const int schedules = (rule.keys.empty() ? 0 : 1) +
        (rule.every > 0 ? 1 : 0) + (rule.probability > 0.0 ? 1 : 0) +
        (rule.failCount > 0 ? 1 : 0);
    if (schedules > 1) {
        return Status::error("rule for '" + rule.probe +
                             "' has more than one trigger schedule");
    }
    if (rule.probability < 0.0 || rule.probability > 1.0)
        return Status::error("probability must be in [0, 1]");
    return Status::ok();
}

} // namespace

Result<FaultPlan>
FaultPlan::parseJson(const std::string &text)
{
    std::string error;
    const JsonValue root = JsonValue::parse(text, &error);
    if (!error.empty())
        return Status::error("fault plan: " + error);
    if (!root.isObject())
        return Status::error("fault plan: top level is not an object");

    const JsonValue *schema = root.member("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != "darkside-fault-plan-v1") {
        return Status::error(
            "fault plan: schema is not \"darkside-fault-plan-v1\"");
    }

    FaultPlan plan;
    if (const JsonValue *seed = root.member("seed")) {
        if (!seed->isNonNegativeInteger())
            return Status::error("fault plan: seed must be a "
                                 "non-negative integer");
        plan.seed = static_cast<std::uint64_t>(seed->asNumber());
    }

    const JsonValue *rules = root.member("rules");
    if (!rules || !rules->isArray())
        return Status::error("fault plan: missing 'rules' array");

    for (std::size_t i = 0; i < rules->asArray().size(); ++i) {
        const JsonValue &r = rules->asArray()[i];
        const std::string where =
            "fault plan: rules[" + std::to_string(i) + "]: ";
        if (!r.isObject())
            return Status::error(where + "not an object");

        FaultRule rule;
        const JsonValue *probe = r.member("probe");
        if (!probe || !probe->isString())
            return Status::error(where + "missing string 'probe'");
        rule.probe = probe->asString();

        const JsonValue *kind = r.member("kind");
        if (!kind || !kind->isString() ||
            !faultKindFromName(kind->asString(), &rule.kind)) {
            return Status::error(where + "missing or unknown 'kind'");
        }

        if (const JsonValue *keys = r.member("keys")) {
            if (!keys->isArray())
                return Status::error(where + "'keys' is not an array");
            for (const JsonValue &k : keys->asArray()) {
                if (!k.isNonNegativeInteger()) {
                    return Status::error(
                        where + "'keys' entry is not a non-negative "
                                "integer");
                }
                rule.keys.push_back(
                    static_cast<std::uint64_t>(k.asNumber()));
            }
        }
        if (const JsonValue *every = r.member("every")) {
            if (!every->isNonNegativeInteger())
                return Status::error(where + "'every' must be a "
                                             "non-negative integer");
            rule.every = static_cast<std::uint64_t>(every->asNumber());
        }
        if (const JsonValue *phase = r.member("phase")) {
            if (!phase->isNonNegativeInteger())
                return Status::error(where + "'phase' must be a "
                                             "non-negative integer");
            rule.phase = static_cast<std::uint64_t>(phase->asNumber());
        }
        if (const JsonValue *p = r.member("probability")) {
            if (!p->isNumber())
                return Status::error(where +
                                     "'probability' must be a number");
            rule.probability = p->asNumber();
        }
        if (const JsonValue *fc = r.member("fail_count")) {
            if (!fc->isNonNegativeInteger())
                return Status::error(where + "'fail_count' must be a "
                                             "non-negative integer");
            rule.failCount = static_cast<std::uint64_t>(fc->asNumber());
        }

        const Status valid = validateRule(rule);
        if (!valid)
            return Status::error(where + valid.message());
        plan.rules.push_back(std::move(rule));
    }
    return plan;
}

Result<FaultPlan>
FaultPlan::loadFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return Status::error("cannot open fault plan '" + path + "'");
    std::ostringstream buf;
    buf << is.rdbuf();
    auto plan = parseJson(buf.str());
    if (!plan)
        return Status::error("'" + path + "': " + plan.message());
    return plan;
}

// ---------------------------------------------------------------------
// FaultError / FaultInjector
// ---------------------------------------------------------------------

FaultError::FaultError(std::string probe, FaultKind kind,
                       std::uint64_t key)
    : std::runtime_error("injected fault " +
                         std::string(faultKindName(kind)) + " at " +
                         probe + " (key " + std::to_string(key) + ")"),
      probe_(std::move(probe)), kind_(kind), key_(key)
{}

FaultInjector &
FaultInjector::global()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(FaultPlan plan)
{
    auto armed = std::make_shared<ArmedPlan>();
    const std::size_t rules = plan.rules.size();
    armed->plan = std::move(plan);
    armed->hits = std::vector<std::atomic<std::uint64_t>>(rules);

    FaultMetrics::get(); // counters visible in snapshots immediately
    std::lock_guard<std::mutex> lock(mutex_);
    plan_ = std::move(armed);
    armed_.store(true, std::memory_order_release);
}

void
FaultInjector::disarm()
{
    std::lock_guard<std::mutex> lock(mutex_);
    armed_.store(false, std::memory_order_release);
    plan_.reset();
}

bool
FaultInjector::armed() const
{
    return armed_.load(std::memory_order_acquire);
}

std::optional<FaultKind>
FaultInjector::trigger(const char *probe, std::uint64_t key)
{
    if (!armed())
        return std::nullopt;

    std::shared_ptr<ArmedPlan> armed_plan;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        armed_plan = plan_;
    }
    if (!armed_plan)
        return std::nullopt;

    for (std::size_t i = 0; i < armed_plan->plan.rules.size(); ++i) {
        const FaultRule &rule = armed_plan->plan.rules[i];
        if (rule.probe != probe)
            continue;

        bool fires = false;
        if (!rule.keys.empty()) {
            for (std::uint64_t k : rule.keys)
                fires = fires || k == key;
        } else if (rule.every > 0) {
            fires = key % rule.every == rule.phase;
        } else if (rule.probability > 0.0) {
            // Seeded hash coin: a pure function of (seed, probe, key),
            // so the same plan fires at the same sites on replay.
            const std::uint64_t h = mix64(armed_plan->plan.seed ^
                                          hashName(probe) ^ mix64(key));
            const double u = static_cast<double>(h >> 11) *
                (1.0 / 9007199254740992.0); // 2^53
            fires = u < rule.probability;
        } else if (rule.failCount > 0) {
            fires = armed_plan->hits[i].fetch_add(
                        1, std::memory_order_relaxed) < rule.failCount;
        } else {
            fires = true; // unconditional rule
        }
        if (!fires)
            continue;

        const ProbePoint *point = findProbe(rule.probe);
        const bool deterministic = !point || point->deterministic;
        auto &reg = telemetry::MetricRegistry::global();
        if (deterministic)
            FaultMetrics::get().injected.add(1);
        reg.counter(std::string("fault.injected.") + probe, "faults",
                    deterministic)
            .add(1);
        return rule.kind;
    }
    return std::nullopt;
}

void
FaultInjector::noteRetried()
{
    FaultMetrics::get().retried.add(1);
}

void
FaultInjector::noteRecovered()
{
    FaultMetrics::get().recovered.add(1);
}

void
FaultInjector::noteDegraded()
{
    FaultMetrics::get().degraded.add(1);
}

} // namespace darkside
