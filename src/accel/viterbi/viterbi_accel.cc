#include "accel/viterbi/viterbi_accel.hh"

#include <algorithm>

#include "telemetry/metrics.hh"

namespace darkside {

namespace {

/** Hardware record sizes (UNFOLD packed layouts, Fig. 6). */
constexpr std::uint64_t kStateRecordBytes = 6;
constexpr std::uint64_t kArcRecordBytes = 10;
constexpr std::uint64_t kLatticeRecordBytes = 12;

} // namespace

ViterbiAcceleratorSim::ViterbiAcceleratorSim(
    const ViterbiAccelConfig &config, const Wfst &fst)
    : config_(config), fst_(fst), stateCache_(config.stateCache),
      arcCache_(config.arcCache), latticeCache_(config.latticeCache),
      likelihoodMem_(EnergyModel::sram(config.likelihoodBufferBytes)),
      hashMem_(EnergyModel::sram(
          (config.hashEntries +
           (config.hash == HashOrganisation::UnboundedBaseline
                ? config.backupEntries
                : 0)) *
          config.hashEntryBytes))
{
    ds_assert(config.frequencyHz > 0.0);
}

void
ViterbiAcceleratorSim::onUtteranceStart(std::size_t frames)
{
    // The acoustic likelihood buffer is refilled per utterance by the
    // DNN accelerator through the shared DRAM buffer; the WFST caches
    // stay warm across utterances (same graph).
}

void
ViterbiAcceleratorSim::onStateExpand(StateId state)
{
    ++frameStateAccesses_;
    if (!stateCache_.access(static_cast<std::uint64_t>(state) *
                            kStateRecordBytes)) {
        ++frameStateMisses_;
    }
    energy_.addDynamic(stateCache_.accessEnergy());
}

void
ViterbiAcceleratorSim::onArcTraverse(std::size_t arc_index,
                                     const Arc &arc)
{
    ++frameArcAccesses_;
    // Arc records live after the state table in the WFST image.
    const std::uint64_t base = fst_.stateCount() * kStateRecordBytes;
    if (!arcCache_.access(base + static_cast<std::uint64_t>(arc_index) *
                          kArcRecordBytes)) {
        ++frameArcMisses_;
    }
    energy_.addDynamic(arcCache_.accessEnergy());

    // Acoustic likelihood read + likelihood evaluation (add + compare).
    energy_.addDynamic(likelihoodMem_.accessEnergy);
    energy_.addDynamic(2.0 * EnergyModel::fp32AddEnergy());

    if (arc.olabel != kEpsilon) {
        ++frameLatticeWrites_;
        const std::uint64_t lattice_addr =
            (static_cast<std::uint64_t>(frames_) * 4096 +
             frameLatticeWrites_) *
            kLatticeRecordBytes;
        if (!latticeCache_.access(lattice_addr))
            ++frameLatticeMisses_;
        energy_.addDynamic(latticeCache_.accessEnergy());
    }
}

void
ViterbiAcceleratorSim::onFrameEnd(const FrameActivity &activity)
{
    ++frames_;
    const auto &sel = activity.selector;

    // --- Stage occupancies (cycles) -------------------------------
    const std::uint64_t state_stage = frameStateAccesses_;
    const std::uint64_t arc_stage = frameArcAccesses_;
    const std::uint64_t eval_stage = activity.generated;

    std::uint64_t hash_stage = sel.insertions;
    std::uint64_t overflow_accesses = 0;
    if (config_.hash == HashOrganisation::UnboundedBaseline) {
        hash_stage += sel.backupAccesses * config_.backupPenaltyCycles;
        overflow_accesses = sel.overflowAccesses;
    }
    // The proposal's Max-Heap replacement completes in a single cycle
    // (TimingModel), so insertions already cover it.

    // --- DRAM traffic ----------------------------------------------
    const std::uint64_t miss_lines =
        frameStateMisses_ + frameArcMisses_ + frameLatticeMisses_;
    // Each overflow access spills/fetches one hypothesis record; a 64 B
    // line holds several, but pointer-chased records rarely coalesce —
    // charge one line each way.
    const std::uint64_t overflow_lines = overflow_accesses * 2;
    missLines_ += miss_lines;
    overflowLines_ += overflow_lines;

    const double bytes_per_cycle =
        EnergyModel::dramBandwidth() / config_.frequencyHz;
    const auto mem_stage = static_cast<std::uint64_t>(
        static_cast<double>((miss_lines + overflow_lines) * 64) /
        bytes_per_cycle);
    // Overflow accesses additionally expose latency: the hypothesis
    // issuer blocks on the chained lookup. The 32 in-flight requests
    // (Table III) overlap most of the 50-cycle DRAM latency; ~1/32 is
    // exposed per access.
    const std::uint64_t latency_cycles =
        overflow_accesses * static_cast<std::uint64_t>(
            EnergyModel::dramLatency() * config_.frequencyHz / 32.0);

    const std::uint64_t frame_cycles =
        std::max({state_stage, arc_stage, eval_stage, hash_stage,
                  mem_stage}) +
        latency_cycles + config_.frameOverheadCycles;
    cycles_ += frame_cycles;

    // --- Energy ------------------------------------------------------
    energy_.addDynamic(static_cast<double>(sel.insertions) *
                       hashAccessEnergy());
    energy_.addDynamic(static_cast<double>(sel.backupAccesses) *
                       hashAccessEnergy());
    energy_.addDynamic(
        static_cast<double>((miss_lines + overflow_lines)) *
        EnergyModel::dramLineEnergy());

    const double leakage = stateCache_.leakagePower() +
        arcCache_.leakagePower() + latticeCache_.leakagePower() +
        likelihoodMem_.leakagePower + hashMem_.leakagePower +
        6.0 * EnergyModel::fpUnitLeakage();
    energy_.addStatic(leakage, static_cast<double>(frame_cycles) /
                                   config_.frequencyHz);

    frameStateAccesses_ = 0;
    frameStateMisses_ = 0;
    frameArcAccesses_ = 0;
    frameArcMisses_ = 0;
    frameLatticeWrites_ = 0;
    frameLatticeMisses_ = 0;
}

ViterbiSimResult
ViterbiAcceleratorSim::result() const
{
    ViterbiSimResult r;
    r.cycles = cycles_;
    r.seconds = static_cast<double>(cycles_) / config_.frequencyHz;
    r.energy = energy_;
    r.stateCache = stateCache_.stats();
    r.arcCache = arcCache_.stats();
    r.latticeCache = latticeCache_.stats();
    r.missLines = missLines_;
    r.overflowLines = overflowLines_;
    r.frames = frames_;
    return r;
}

void
ViterbiAcceleratorSim::recordTelemetry() const
{
    auto &reg = telemetry::MetricRegistry::global();
    reg.counter("accel.viterbi.cycles", "cycles").add(cycles_);
    reg.counter("accel.viterbi.frames", "frames").add(frames_);
    reg.counter("accel.viterbi.miss_lines", "lines").add(missLines_);
    reg.counter("accel.viterbi.overflow_lines", "lines")
        .add(overflowLines_);
    reg.counter("accel.viterbi.state_cache_misses", "accesses")
        .add(stateCache_.stats().misses);
    reg.counter("accel.viterbi.arc_cache_misses", "accesses")
        .add(arcCache_.stats().misses);
}

void
ViterbiAcceleratorSim::resetStats()
{
    cycles_ = 0;
    frames_ = 0;
    missLines_ = 0;
    overflowLines_ = 0;
    energy_ = EnergyAccount{};
    stateCache_.resetStats();
    arcCache_.resetStats();
    latticeCache_.resetStats();
}

double
ViterbiAcceleratorSim::area() const
{
    const std::size_t hash_bytes =
        (config_.hashEntries +
         (config_.hash == HashOrganisation::UnboundedBaseline
              ? config_.backupEntries
              : 0)) *
        config_.hashEntryBytes;
    double area = stateCache_.area() + arcCache_.area() +
        latticeCache_.area() + likelihoodMem_.area +
        EnergyModel::sram(hash_bytes).area +
        10.0 * EnergyModel::fpUnitArea();
    if (config_.hash == HashOrganisation::NBestSetAssociative) {
        // Max-Heap index vectors + parallel comparators: the paper
        // reports a 6% area overhead on the hash structure.
        area += EnergyModel::sram(hash_bytes).area * 0.06;
    }
    return area;
}

double
ViterbiAcceleratorSim::hashAccessEnergy() const
{
    return hashMem_.accessEnergy;
}

} // namespace darkside
