/**
 * @file
 * Cycle-level model of the Viterbi search accelerator (UNFOLD,
 * Sec. III-A) and of the paper's extension replacing the hypothesis
 * storage with the small set-associative Max-Heap hash (Sec. III-B).
 *
 * The simulator attaches to the software Viterbi decoder as a
 * SearchObserver: it sees the exact state/arc fetch streams (driving the
 * State/Arc/Word-Lattice cache models) and the per-frame selector
 * counters (driving the hash-access and overflow cost model). Per frame
 * the pipeline throughput is limited by its busiest stage:
 *
 *   state issue   : 1 token/cycle + DRAM for state-cache misses
 *   arc issue     : 1 arc/cycle + DRAM for arc-cache misses
 *   acoustic read : 1/cycle (on-chip likelihood buffer)
 *   likelihood eval: 1/cycle (4 FP adders, 2 comparators)
 *   hypothesis hash: baseline — 1 cycle direct-mapped, +2 per backup
 *                    chain access, DRAM line traffic per overflow access;
 *                    proposal — single cycle always (Max-Heap replace)
 *
 * DRAM behaviour: 32 in-flight requests (Table III) make misses
 * bandwidth- rather than latency-bound; each 64 B line occupies the
 * channel bandwidth/frequency bytes-per-cycle.
 */

#ifndef DARKSIDE_ACCEL_VITERBI_VITERBI_ACCEL_HH
#define DARKSIDE_ACCEL_VITERBI_VITERBI_ACCEL_HH

#include <cstdint>

#include "decoder/viterbi_decoder.hh"
#include "sim/cache_model.hh"
#include "sim/energy_model.hh"
#include "wfst/wfst.hh"

namespace darkside {

/** Hypothesis-storage organisation being modelled. */
enum class HashOrganisation : std::uint8_t {
    /** UNFOLD baseline: big direct-mapped table + backup + overflow. */
    UnboundedBaseline,
    /** The proposal: small K-way set-associative Max-Heap table. */
    NBestSetAssociative,
};

/** Table III parameters (scaled variants used by the benches). */
struct ViterbiAccelConfig
{
    CacheConfig stateCache{"state-cache", 256 * 1024, 4, 64};
    CacheConfig arcCache{"arc-cache", 768 * 1024, 8, 64};
    CacheConfig latticeCache{"lattice-cache", 128 * 1024, 2, 64};
    std::size_t likelihoodBufferBytes = 64 * 1024;

    HashOrganisation hash = HashOrganisation::UnboundedBaseline;
    /** Entries of the primary hash region (baseline: 32K direct-mapped;
     *  proposal: N, e.g. 1024). */
    std::size_t hashEntries = 32 * 1024;
    /** Backup-buffer entries (baseline only; UNFOLD: 16K). */
    std::size_t backupEntries = 16 * 1024;
    /** Bytes per hypothesis record in the hash storage. */
    std::size_t hashEntryBytes = 16;

    /** Clock (Sec. IV: 2 ns -> 500 MHz). */
    double frequencyHz = 500e6;
    /** Extra cycles per backup-buffer (chained) access. */
    std::size_t backupPenaltyCycles = 2;
    /** Pipeline fill/drain overhead per frame. */
    std::size_t frameOverheadCycles = 12;
};

/** Aggregated simulation outcome. */
struct ViterbiSimResult
{
    std::uint64_t cycles = 0;
    double seconds = 0.0;
    EnergyAccount energy;
    CacheStats stateCache;
    CacheStats arcCache;
    CacheStats latticeCache;
    /** DRAM lines moved for cache misses. */
    std::uint64_t missLines = 0;
    /** DRAM lines moved for hypothesis overflow traffic. */
    std::uint64_t overflowLines = 0;
    std::uint64_t frames = 0;
};

/**
 * Viterbi accelerator simulator; feed it to ViterbiDecoder::decode().
 */
class ViterbiAcceleratorSim : public SearchObserver
{
  public:
    /**
     * @param config hardware parameters
     * @param fst decoding graph (for arc/state byte addresses)
     */
    ViterbiAcceleratorSim(const ViterbiAccelConfig &config,
                          const Wfst &fst);

    // SearchObserver interface.
    void onUtteranceStart(std::size_t frames) override;
    void onStateExpand(StateId state) override;
    void onArcTraverse(std::size_t arc_index, const Arc &arc) override;
    void onFrameEnd(const FrameActivity &activity) override;

    /** Results accumulated since construction (or resetStats()). */
    ViterbiSimResult result() const;

    /**
     * Publish the accumulated counters to the global telemetry registry
     * (docs/METRICS.md "accel.viterbi.*"). Call once per simulator
     * instance, after the decode it observed; the cycle and DRAM-line
     * counts are pure functions of the observed access stream, so the
     * counters stay deterministic under parallel test-set runs.
     */
    void recordTelemetry() const;

    /** Clear accumulated counters (cache contents persist). */
    void resetStats();

    /** Total accelerator area, mm^2 (the Sec. III-B area comparison). */
    double area() const;

    const ViterbiAccelConfig &config() const { return config_; }

  private:
    double hashAccessEnergy() const;

    ViterbiAccelConfig config_;
    const Wfst &fst_;

    CacheModel stateCache_;
    CacheModel arcCache_;
    CacheModel latticeCache_;
    MemoryCharacteristics likelihoodMem_;
    MemoryCharacteristics hashMem_;

    std::uint64_t cycles_ = 0;
    std::uint64_t frames_ = 0;
    std::uint64_t missLines_ = 0;
    std::uint64_t overflowLines_ = 0;
    EnergyAccount energy_;

    // Per-frame scratch.
    std::uint64_t frameStateAccesses_ = 0;
    std::uint64_t frameStateMisses_ = 0;
    std::uint64_t frameArcAccesses_ = 0;
    std::uint64_t frameArcMisses_ = 0;
    std::uint64_t frameLatticeWrites_ = 0;
    std::uint64_t frameLatticeMisses_ = 0;
};

} // namespace darkside

#endif // DARKSIDE_ACCEL_VITERBI_VITERBI_ACCEL_HH
