#include "accel/dnn/dnn_accel.hh"

#include <algorithm>
#include <cmath>

namespace darkside {

double
DnnSimResult::utteranceSeconds(std::size_t frames) const
{
    return loadSeconds + secondsPerFrame * static_cast<double>(frames);
}

double
DnnSimResult::utteranceJoules(std::size_t frames) const
{
    const double active_seconds =
        secondsPerFrame * static_cast<double>(frames);
    return loadJoules +
        dynamicJoulesPerFrame * static_cast<double>(frames) +
        activeLeakageWatts * (active_seconds + loadSeconds);
}

DnnAcceleratorSim::DnnAcceleratorSim(const DnnAccelConfig &config)
    : config_(config),
      weightsMem_(EnergyModel::edram(config.weightsBufferBytes)),
      ioMem_(EnergyModel::sram(config.ioBufferBytes))
{
    ds_assert(config.multipliers > 0);
    ds_assert(config.ioBanks > 0 && config.ioReadPorts > 0);
    ds_assert(config.frequencyHz > 0.0);

    // The weights buffer is heavily banked (Fig. 10): a read activates
    // one bank, so the dynamic access energy is the *bank's*, not the
    // whole array's. Leakage and area still scale with total capacity.
    const MemoryCharacteristics bank = EnergyModel::edram(
        config.weightsBufferBytes /
        std::max<std::size_t>(config.weightsBufferBanks, 1));
    weightsMem_.accessEnergy = bank.accessEnergy;
}

LayerSimResult
DnnAcceleratorSim::simulateFc(const FullyConnected &fc,
                              double &dynamic_joules) const
{
    LayerSimResult result;
    result.name = fc.name();

    // Output neurons are distributed round-robin over the tiles
    // (Sec. III-D); each tile owns multipliers/tiles MAC lanes and
    // ioBanks/tiles I/O-buffer banks, so a tile gathers one group of
    // its own neuron's weights per cycle.
    const std::size_t tiles = std::max<std::size_t>(config_.tiles, 1);
    const std::size_t m =
        std::max<std::size_t>(config_.multipliers / tiles, 1);
    const std::size_t banks =
        std::max<std::size_t>(config_.ioBanks / tiles, 1);
    const SparseLayer sparse(fc);

    // Per-weight storage: 4 B value + 2 B index.
    const double weight_word_energy =
        weightsMem_.accessEnergy * (6.0 / 8.0);
    const double io_read_energy = ioMem_.accessEnergy / 2.0;

    std::vector<std::size_t> bank_load(banks);
    std::vector<std::uint64_t> tile_cycles(tiles, 0);
    std::uint64_t stalls = 0;

    for (std::size_t r = 0; r < sparse.outputSize(); ++r) {
        const std::size_t tile = r % tiles;
        const std::size_t row_begin = sparse.rowBegin(r);
        const std::size_t row_end = sparse.rowEnd(r);
        const std::size_t nnz = row_end - row_begin;
        if (nnz == 0)
            continue;

        // The index stream of a row is prefetched ahead of the MAC
        // groups (decoupled gather), so bank conflicts average over
        // the whole row rather than stalling each m-wide group:
        //   row cycles = max(ceil(nnz / lanes),
        //                    max_b ceil(row load on bank b / ports)).
        // Dense rows interleave perfectly and hit the first term.
        std::fill(bank_load.begin(), bank_load.end(), 0);
        std::size_t worst = 0;
        for (std::size_t i = row_begin; i < row_end; ++i) {
            const std::size_t bank = sparse.index(i) % banks;
            worst = std::max(worst, ++bank_load[bank]);
        }
        const std::size_t ideal = (nnz + m - 1) / m;
        const std::size_t gather =
            (worst + config_.ioReadPorts - 1) / config_.ioReadPorts;
        const std::size_t row_cycles = std::max(ideal, gather);
        tile_cycles[tile] += row_cycles;
        stalls += row_cycles - ideal;
    }

    result.cycles = std::max<std::uint64_t>(
        *std::max_element(tile_cycles.begin(), tile_cycles.end()), 1);
    result.macs = sparse.nonzeros();
    result.stallCycles = stalls;
    result.utilization = static_cast<double>(result.macs) /
        (static_cast<double>(config_.multipliers) *
         static_cast<double>(result.cycles));

    // Dynamic energy: weight+index stream from eDRAM, input gathers,
    // MACs, output writeback.
    dynamic_joules += static_cast<double>(sparse.nonzeros()) *
        (weight_word_energy + io_read_energy +
         EnergyModel::fp32MultiplyEnergy() +
         EnergyModel::fp32AddEnergy());
    dynamic_joules += static_cast<double>(sparse.outputSize()) *
        (ioMem_.accessEnergy / 2.0);
    return result;
}

LayerSimResult
DnnAcceleratorSim::simulateElementwise(const Layer &layer,
                                       double &dynamic_joules) const
{
    LayerSimResult result;
    result.name = layer.name();

    // Pooling / normalization / softmax run on the special function
    // units (Fig. 10: REC, SQRT, EXP, MAXMIN); model them as 16 parallel
    // lanes, one element per lane per cycle, two FP-op energies per
    // element (e.g. square + accumulate, or exp + normalize).
    const std::size_t elements = layer.inputSize();
    result.cycles = std::max<std::uint64_t>((elements + 15) / 16, 1);
    result.macs = 0;
    result.utilization = 0.0;
    dynamic_joules += static_cast<double>(elements) *
        (2.0 * EnergyModel::fp32AddEnergy() + ioMem_.accessEnergy / 2.0);
    return result;
}

DnnSimResult
DnnAcceleratorSim::simulate(const Mlp &model) const
{
    DnnSimResult result;
    double dynamic_joules = 0.0;

    std::uint64_t fc_macs = 0;
    double fc_weighted_util = 0.0;
    std::uint64_t fc_cycles = 0;

    for (std::size_t i = 0; i < model.layerCount(); ++i) {
        const Layer &layer = model.layer(i);
        LayerSimResult lr;
        if (layer.kind() == LayerKind::FullyConnected) {
            const auto &fc = static_cast<const FullyConnected &>(layer);
            lr = simulateFc(fc, dynamic_joules);
            fc_macs += lr.macs;
            fc_cycles += lr.cycles;
            fc_weighted_util += lr.utilization *
                static_cast<double>(lr.cycles);
            result.modelBytes += SparseLayer(fc).storageBytes();
        } else {
            lr = simulateElementwise(layer, dynamic_joules);
        }
        result.cyclesPerFrame += lr.cycles;
        result.layers.push_back(lr);
    }

    result.secondsPerFrame =
        static_cast<double>(result.cyclesPerFrame) / config_.frequencyHz;
    result.dynamicJoulesPerFrame = dynamic_joules;
    result.fcUtilization =
        fc_cycles == 0 ? 0.0
                       : fc_weighted_util / static_cast<double>(fc_cycles);

    // Leakage: only the eDRAM banks holding model bytes stay powered
    // (unused banks are power-gated), plus the I/O buffer and the FP
    // datapath.
    const std::size_t bank_bytes =
        config_.weightsBufferBytes / config_.weightsBufferBanks;
    const std::size_t active_banks = std::min(
        config_.weightsBufferBanks,
        (result.modelBytes + bank_bytes - 1) / bank_bytes);
    const double weights_leak = weightsMem_.leakagePower *
        static_cast<double>(active_banks) /
        static_cast<double>(config_.weightsBufferBanks);
    const double logic_leak = EnergyModel::fpUnitLeakage() *
        static_cast<double>(config_.multipliers + config_.adders);
    result.activeLeakageWatts =
        weights_leak + ioMem_.leakagePower + logic_leak;

    // One-time model load from DRAM per utterance.
    result.loadSeconds = static_cast<double>(result.modelBytes) /
        EnergyModel::dramBandwidth();
    result.loadJoules =
        static_cast<double>((result.modelBytes + 63) / 64) *
        EnergyModel::dramLineEnergy();
    return result;
}

double
DnnAcceleratorSim::area() const
{
    return weightsMem_.area + ioMem_.area +
        EnergyModel::fpUnitArea() *
        static_cast<double>(config_.multipliers + config_.adders);
}

} // namespace darkside
