/**
 * @file
 * Cycle-level model of the DNN accelerator of Sec. III-D: a DaDianNao-
 * style design extended for pruned (sparse) fully-connected layers.
 *
 * Per cycle the compute engine consumes a group of M weights (M = number
 * of FP multipliers) belonging to one output neuron, gathers the M
 * corresponding inputs from the banked I/O buffer, multiplies and
 * reduces through the adder tree. Dense layers read consecutive inputs
 * and never conflict; pruned layers gather a sparse index set, and when
 * more than P indices map to the same bank (P = read ports per bank) the
 * pipeline stalls — this is the mechanism behind the paper's measured FP
 * throughput drop of 11% / 18% / 33% at 70/80/90% pruning.
 *
 * Weights and indices live in banked eDRAM; banks not needed by a pruned
 * model are power-gated. Model parameters are loaded from DRAM once per
 * utterance (the accelerator is power-gated between utterances).
 */

#ifndef DARKSIDE_ACCEL_DNN_DNN_ACCEL_HH
#define DARKSIDE_ACCEL_DNN_DNN_ACCEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/mlp.hh"
#include "pruning/sparse_layer.hh"
#include "sim/energy_model.hh"

namespace darkside {

/** Table II parameters. */
struct DnnAccelConfig
{
    std::size_t tiles = 4;
    /** FP32 multipliers (total; Table II: 128). */
    std::size_t multipliers = 128;
    /** FP32 adders (total; Table II: 128). */
    std::size_t adders = 128;
    /** Weights buffer capacity (Table II: 18 MB eDRAM). */
    std::size_t weightsBufferBytes = 18ull * 1024 * 1024;
    /** Power-gating granularity of the weights buffer. */
    std::size_t weightsBufferBanks = 32;
    /** I/O buffer capacity (Table II: 32 KB). */
    std::size_t ioBufferBytes = 32 * 1024;
    /** I/O buffer banks (Table II: 64). */
    std::size_t ioBanks = 64;
    /** Read ports per I/O bank (Table II: 2). */
    std::size_t ioReadPorts = 2;
    /** Clock (Sec. IV: 1.25 ns -> 800 MHz). */
    double frequencyHz = 800e6;
};

/** Simulation outcome for one layer's single-frame evaluation. */
struct LayerSimResult
{
    std::string name;
    std::uint64_t cycles = 0;
    std::uint64_t macs = 0;
    std::uint64_t stallCycles = 0;
    /** MAC-slot utilization = macs / (multipliers * cycles). */
    double utilization = 0.0;
};

/** Whole-network, per-frame + per-utterance costs. */
struct DnnSimResult
{
    std::vector<LayerSimResult> layers;
    std::uint64_t cyclesPerFrame = 0;
    double secondsPerFrame = 0.0;
    /** Dynamic energy per frame, joules. */
    double dynamicJoulesPerFrame = 0.0;
    /** Leakage power while active, watts. */
    double activeLeakageWatts = 0.0;
    /** Bytes of model parameters held on-chip. */
    std::size_t modelBytes = 0;
    /** One-time utterance cost: loading the model from DRAM. */
    double loadSeconds = 0.0;
    double loadJoules = 0.0;
    /** Utilization across FC layers only (the paper's FP throughput). */
    double fcUtilization = 0.0;

    /** Total time for an utterance of `frames` frames, seconds. */
    double utteranceSeconds(std::size_t frames) const;

    /** Total energy for an utterance of `frames` frames, joules. */
    double utteranceJoules(std::size_t frames) const;
};

/**
 * Analytical-plus-trace simulator of the DNN accelerator.
 */
class DnnAcceleratorSim
{
  public:
    explicit DnnAcceleratorSim(const DnnAccelConfig &config);

    const DnnAccelConfig &config() const { return config_; }

    /**
     * Simulate one frame of inference for `model`, exploiting sparsity
     * of masked layers.
     */
    DnnSimResult simulate(const Mlp &model) const;

    /** Accelerator area, mm^2. */
    double area() const;

  private:
    LayerSimResult simulateFc(const FullyConnected &fc,
                              double &dynamic_joules) const;
    LayerSimResult simulateElementwise(const Layer &layer,
                                       double &dynamic_joules) const;

    DnnAccelConfig config_;
    MemoryCharacteristics weightsMem_;
    MemoryCharacteristics ioMem_;
};

} // namespace darkside

#endif // DARKSIDE_ACCEL_DNN_DNN_ACCEL_HH
