/**
 * @file
 * AVX2 microkernels. This TU is compiled with -mavx2 (and only this
 * TU), guarded by DARKSIDE_HAVE_AVX2 from CMake. -mfma is deliberately
 * NOT enabled: the bit-exactness contract requires the same separate
 * multiply and add roundings as the scalar oracle, so a fused
 * multiply-add — whether written or contracted by the compiler — would
 * change results. Without the FMA ISA the compiler cannot contract.
 *
 * Float kernels vectorize across frames: lane j of a ymm register is
 * frame f0 + j, and the column (or CSR entry) loop advances exactly as
 * in the scalar kernels, so each lane replays the scalar accumulation
 * order bit for bit. The int8 kernel vectorizes along columns with
 * exact int32 accumulation (order-free), sharing the scalar arm's
 * float dequant expression.
 */

#ifdef DARKSIDE_HAVE_AVX2

#include <immintrin.h>

#include "tensor/kernels_detail.hh"

namespace darkside {
namespace kernels {
namespace detail {

namespace {

/** Store lane j of `acc` (+ bias) into y.rowPtr(f0 + j)[r]. */
inline void
scatterColumn(__m256 acc, float bias, Matrix &y, std::size_t f0,
              std::size_t r)
{
    const __m256 v = _mm256_add_ps(acc, _mm256_set1_ps(bias));
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, v);
    for (std::size_t j = 0; j < 8; ++j)
        y.rowPtr(f0 + j)[r] = lanes[j];
}

/** Sum the 8 int32 lanes of `v` exactly. */
inline std::int32_t
hsumInt32(__m256i v)
{
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    __m128i s = _mm_add_epi32(lo, hi);
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(s);
}

/** Sign-extend 16 int8 codes to int16 lanes. */
inline __m256i
load16As16(const std::int8_t *p)
{
    return _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)));
}

} // namespace

void
denseForwardAvx2(const float *xt, std::size_t frames,
                 std::size_t groups8, const Matrix &w, const float *bias,
                 Matrix &y)
{
    const std::size_t in = w.cols();
    const std::size_t out = w.rows();
    // Register tile: 4 weight rows x 8 frames. Row tiles are the outer
    // loop so the 4 active weight rows stay L1-resident while the
    // panel streams; one panel load feeds 4 accumulators.
    std::size_t r0 = 0;
    for (; r0 + 4 <= out; r0 += 4) {
        const float *w0 = w.rowPtr(r0);
        const float *w1 = w.rowPtr(r0 + 1);
        const float *w2 = w.rowPtr(r0 + 2);
        const float *w3 = w.rowPtr(r0 + 3);
        for (std::size_t g = 0; g < groups8; ++g) {
            const std::size_t f0 = g * 8;
            __m256 a0 = _mm256_setzero_ps();
            __m256 a1 = _mm256_setzero_ps();
            __m256 a2 = _mm256_setzero_ps();
            __m256 a3 = _mm256_setzero_ps();
            const float *panel = xt + f0;
            for (std::size_t c = 0; c < in; ++c) {
                const __m256 xv = _mm256_loadu_ps(panel + c * frames);
                a0 = _mm256_add_ps(
                    a0, _mm256_mul_ps(_mm256_set1_ps(w0[c]), xv));
                a1 = _mm256_add_ps(
                    a1, _mm256_mul_ps(_mm256_set1_ps(w1[c]), xv));
                a2 = _mm256_add_ps(
                    a2, _mm256_mul_ps(_mm256_set1_ps(w2[c]), xv));
                a3 = _mm256_add_ps(
                    a3, _mm256_mul_ps(_mm256_set1_ps(w3[c]), xv));
            }
            scatterColumn(a0, bias[r0], y, f0, r0);
            scatterColumn(a1, bias[r0 + 1], y, f0, r0 + 1);
            scatterColumn(a2, bias[r0 + 2], y, f0, r0 + 2);
            scatterColumn(a3, bias[r0 + 3], y, f0, r0 + 3);
        }
    }
    for (; r0 < out; ++r0) { // remainder rows, one at a time
        const float *wr = w.rowPtr(r0);
        for (std::size_t g = 0; g < groups8; ++g) {
            const std::size_t f0 = g * 8;
            __m256 acc = _mm256_setzero_ps();
            const float *panel = xt + f0;
            for (std::size_t c = 0; c < in; ++c) {
                acc = _mm256_add_ps(
                    acc, _mm256_mul_ps(_mm256_set1_ps(wr[c]),
                                       _mm256_loadu_ps(panel +
                                                       c * frames)));
            }
            scatterColumn(acc, bias[r0], y, f0, r0);
        }
    }
}

void
sparseForwardAvx2(const float *xt, std::size_t frames,
                  std::size_t groups8, const CsrView &w, Matrix &y)
{
    // One CSR stream walk per (row, 8-frame group); entries accumulate
    // in stored (column) order, matching the scalar walk per lane.
    for (std::size_t g = 0; g < groups8; ++g) {
        const std::size_t f0 = g * 8;
        const float *panel = xt + f0;
        for (std::size_t r = 0; r < w.rows; ++r) {
            __m256 acc = _mm256_setzero_ps();
            const std::size_t end = w.rowPtr[r + 1];
            for (std::size_t i = w.rowPtr[r]; i < end; ++i) {
                const __m256 xv = _mm256_loadu_ps(
                    panel + static_cast<std::size_t>(w.indices[i]) *
                        frames);
                acc = _mm256_add_ps(
                    acc, _mm256_mul_ps(_mm256_set1_ps(w.weights[i]),
                                       xv));
            }
            scatterColumn(acc, w.bias[r], y, f0, r);
        }
    }
}

void
int8ForwardAvx2(const std::int8_t *xq, const float *frame_scale,
                std::size_t frames, const Int8Matrix &w,
                const float *bias, Matrix &y)
{
    const std::size_t cols = w.cols;
    const std::size_t out = w.rows;
    const std::size_t c16 = cols & ~static_cast<std::size_t>(15);
    for (std::size_t f = 0; f < frames; ++f) {
        const std::int8_t *xf = xq + f * cols;
        const float m = w.scale * frame_scale[f];
        float *yf = y.rowPtr(f);
        std::size_t r0 = 0;
        // 4 weight rows share each 16-code activation load; products
        // madd pairwise into int32 lanes (exact: |pair sum| <= 2*127^2).
        for (; r0 + 4 <= out; r0 += 4) {
            const std::int8_t *w0 = w.codes.data() + r0 * cols;
            const std::int8_t *w1 = w0 + cols;
            const std::int8_t *w2 = w1 + cols;
            const std::int8_t *w3 = w2 + cols;
            __m256i a0 = _mm256_setzero_si256();
            __m256i a1 = _mm256_setzero_si256();
            __m256i a2 = _mm256_setzero_si256();
            __m256i a3 = _mm256_setzero_si256();
            for (std::size_t c = 0; c < c16; c += 16) {
                const __m256i xv = load16As16(xf + c);
                a0 = _mm256_add_epi32(
                    a0, _mm256_madd_epi16(xv, load16As16(w0 + c)));
                a1 = _mm256_add_epi32(
                    a1, _mm256_madd_epi16(xv, load16As16(w1 + c)));
                a2 = _mm256_add_epi32(
                    a2, _mm256_madd_epi16(xv, load16As16(w2 + c)));
                a3 = _mm256_add_epi32(
                    a3, _mm256_madd_epi16(xv, load16As16(w3 + c)));
            }
            std::int32_t s0 = hsumInt32(a0);
            std::int32_t s1 = hsumInt32(a1);
            std::int32_t s2 = hsumInt32(a2);
            std::int32_t s3 = hsumInt32(a3);
            for (std::size_t c = c16; c < cols; ++c) {
                const std::int32_t xv = xf[c];
                s0 += xv * w0[c];
                s1 += xv * w1[c];
                s2 += xv * w2[c];
                s3 += xv * w3[c];
            }
            yf[r0] = static_cast<float>(s0) * m + bias[r0];
            yf[r0 + 1] = static_cast<float>(s1) * m + bias[r0 + 1];
            yf[r0 + 2] = static_cast<float>(s2) * m + bias[r0 + 2];
            yf[r0 + 3] = static_cast<float>(s3) * m + bias[r0 + 3];
        }
        for (; r0 < out; ++r0) {
            const std::int8_t *wr = w.codes.data() + r0 * cols;
            __m256i acc = _mm256_setzero_si256();
            for (std::size_t c = 0; c < c16; c += 16) {
                acc = _mm256_add_epi32(
                    acc, _mm256_madd_epi16(load16As16(xf + c),
                                           load16As16(wr + c)));
            }
            std::int32_t sum = hsumInt32(acc);
            for (std::size_t c = c16; c < cols; ++c)
                sum += static_cast<std::int32_t>(xf[c]) * wr[c];
            yf[r0] = static_cast<float>(sum) * m + bias[r0];
        }
    }
}

} // namespace detail
} // namespace kernels
} // namespace darkside

#endif // DARKSIDE_HAVE_AVX2
