/**
 * @file
 * Internal interface between the kernel dispatcher (kernels.cc) and
 * the AVX2 translation unit (kernels_avx2.cc, compiled with -mavx2
 * only when the toolchain targets x86-64). Not installed; the public
 * API is tensor/kernels.hh.
 *
 * The AVX2 entry points cover only the *full* part of the iteration
 * space — complete 8-frame groups of the transposed panel for the
 * float kernels, whole frames for int8 — and the dispatcher finishes
 * remainders with the shared scalar tails, preserving the per-
 * (frame, output) accumulation order everywhere.
 */

#ifndef DARKSIDE_TENSOR_KERNELS_DETAIL_HH
#define DARKSIDE_TENSOR_KERNELS_DETAIL_HH

#include "tensor/kernels.hh"

namespace darkside {
namespace kernels {
namespace detail {

/**
 * Dense microkernel over full 8-frame groups [0, groups8 * 8) of the
 * transposed panel `xt` (cols x frames, stride = frames). Writes
 * y rows [0, groups8 * 8) for every output column.
 */
void denseForwardAvx2(const float *xt, std::size_t frames,
                      std::size_t groups8, const Matrix &w,
                      const float *bias, Matrix &y);

/** CSR SpMV over full 8-frame groups of the transposed panel. */
void sparseForwardAvx2(const float *xt, std::size_t frames,
                       std::size_t groups8, const CsrView &w, Matrix &y);

/**
 * Int8 GEMM over all frames: xq is the row-major quantized batch
 * (frames x cols), frame_scale the per-frame activation scales. The
 * int32 accumulation is exact, so this is bit-identical to the scalar
 * int8 loop.
 */
void int8ForwardAvx2(const std::int8_t *xq, const float *frame_scale,
                     std::size_t frames, const Int8Matrix &w,
                     const float *bias, Matrix &y);

} // namespace detail
} // namespace kernels
} // namespace darkside

#endif // DARKSIDE_TENSOR_KERNELS_DETAIL_HH
