/**
 * @file
 * Dense row-major float matrix/vector containers and the small set of
 * BLAS-like kernels the acoustic-model library needs. Single precision
 * matches the FP32 datapath of the DNN accelerator being modelled.
 */

#ifndef DARKSIDE_TENSOR_MATRIX_HH
#define DARKSIDE_TENSOR_MATRIX_HH

#include <cstddef>
#include <vector>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/status.hh"

namespace darkside {

/** Dense float vector with bounds-checked element access. */
using Vector = std::vector<float>;

/**
 * Dense row-major matrix of floats.
 */
class Matrix
{
  public:
    Matrix() : rows_(0), cols_(0) {}

    /** Construct a rows x cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    float &at(std::size_t r, std::size_t c)
    {
        ds_assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    float at(std::size_t r, std::size_t c) const
    {
        ds_assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    /** Unchecked row pointer for kernel inner loops. */
    float *rowPtr(std::size_t r) { return data_.data() + r * cols_; }
    const float *rowPtr(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /**
     * Reshape to rows x cols, reusing the existing allocation when it is
     * large enough. Contents are unspecified afterwards (scratch-buffer
     * semantics for the batched kernels).
     */
    void resize(std::size_t rows, std::size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.resize(rows * cols);
    }

    /** Fill every element with the given value. */
    void fill(float v);

    /**
     * Fill with N(0, stddev) deviates; the standard MLP initialisation
     * used before training.
     */
    void randomize(Rng &rng, float stddev);

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<float> data_;
};

/**
 * y = W x + b, where W is (out x in).
 *
 * @param w weight matrix
 * @param x input vector of size w.cols()
 * @param b bias vector of size w.rows()
 * @param y output vector, resized to w.rows()
 */
void gemv(const Matrix &w, const Vector &x, const Vector &b, Vector &y);

/**
 * Accumulate the outer product: w += scale * a b^T.
 * Backprop's weight-gradient update for a fully-connected layer.
 */
void addOuterProduct(Matrix &w, const Vector &a, const Vector &b,
                     float scale);

/**
 * y = W^T x  (used to backpropagate deltas through a layer).
 */
void gemvTransposed(const Matrix &w, const Vector &x, Vector &y);

/**
 * Batched fully-connected evaluation: Y = X W^T + b, where X packs one
 * input vector per row (frames x in), W is (out x in) and Y is resized
 * to (frames x out).
 *
 * The kernel is cache-blocked two ways: output rows of W are processed
 * in L1-sized blocks, and frames are walked in groups of four sharing
 * each streamed weight row, so weight traffic is amortised across the
 * frame batch instead of re-read per frame (the gemv regime). Each
 * output element accumulates in the same column order as gemv(), so
 * results are bit-identical with the per-frame path.
 *
 * This is the scalar oracle the SIMD kernels in tensor/kernels.hh are
 * tested against.
 *
 * @return an error Status when the operand shapes are inconsistent
 *         (x.cols() != w.cols() or b.size() != w.rows()); y is left
 *         untouched in that case.
 */
[[nodiscard]] Status gemmBatch(const Matrix &x, const Matrix &w,
                               const Vector &b, Matrix &y);

/** Elementwise: y[i] += scale * x[i]. */
void axpy(float scale, const Vector &x, Vector &y);

/** @return the dot product of two equal-sized vectors. */
float dot(const Vector &a, const Vector &b);

/** In-place softmax with max-subtraction for numerical stability. */
void softmaxInPlace(Vector &v);

/** Row-pointer softmax; the Vector overload delegates here. */
void softmaxInPlace(float *v, std::size_t n);

/** @return log(sum(exp(v))) computed stably. */
float logSumExp(const Vector &v);

/** @return index of the maximum element; requires non-empty v. */
std::size_t argMax(const Vector &v);

} // namespace darkside

#endif // DARKSIDE_TENSOR_MATRIX_HH
