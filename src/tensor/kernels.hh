/**
 * @file
 * Runtime-dispatched scoring kernels: the vectorized fast paths behind
 * the batched InferenceEngine (dense GEMM, CSR SpMV for magnitude-
 * masked layers, and an int8 quantized GEMM).
 *
 * Dispatch contract:
 *
 *  - The backend is resolved once per process: the DARKSIDE_KERNEL
 *    environment variable ("scalar" | "avx2") overrides, otherwise the
 *    CPU is probed and the widest compiled-in backend wins. Non-x86
 *    builds carry only the scalar backend.
 *  - The float kernels are **bit-identical across backends**. The AVX2
 *    kernels vectorize across *frames* (8 SIMD lanes = 8 frames) over a
 *    transposed activation panel, so every (frame, output) accumulator
 *    still visits columns in exactly the scalar gemv order, with
 *    separate multiply and add roundings (no FMA contraction). The
 *    scalar `gemmBatch` / CSR walk therefore stays the oracle the SIMD
 *    paths are tested against, and `tensor_test` asserts exact
 *    equality, not a tolerance.
 *  - The int8 kernel accumulates in exact int32 arithmetic (order-
 *    free), so its scalar and AVX2 arms are also bit-identical to each
 *    other; against the float path it is bounded-error (per-layer
 *    symmetric weight scale x per-frame symmetric activation scale,
 *    float dequantized accumulator).
 *
 * Every entry point validates operand dimensions and reports
 * mismatches as a Status error (the PR 3 error-propagation contract)
 * instead of walking out of bounds.
 */

#ifndef DARKSIDE_TENSOR_KERNELS_HH
#define DARKSIDE_TENSOR_KERNELS_HH

#include <cstdint>
#include <vector>

#include "tensor/matrix.hh"
#include "util/status.hh"

namespace darkside {
namespace kernels {

/** Kernel implementation families the dispatcher can select. */
enum class KernelBackend : std::uint8_t {
    /** Portable reference loops; the bit-exactness oracle. */
    Scalar,
    /** 8-wide AVX2 microkernels (x86-64 with AVX2 only). */
    Avx2,
};

/** @return "scalar" / "avx2" (stable names, used in bench JSON). */
const char *kernelBackendName(KernelBackend backend);

/** @return true when this build carries the AVX2 kernels and the CPU
 *  can run them. */
bool avx2Available();

/**
 * The process-wide backend: DARKSIDE_KERNEL=scalar|avx2 overrides
 * (requesting an unavailable backend is a fatal configuration error);
 * otherwise AVX2 when available, scalar everywhere else. Resolved once
 * and cached.
 */
KernelBackend activeKernelBackend();

/**
 * Borrowed CSR view of a pruned fully-connected layer — the handoff
 * from `pruning/SparseLayer` (which owns the arrays) to the SpMV
 * kernels. Entries of each row are stored in increasing column order;
 * the bias pointer covers `rows` outputs.
 */
struct CsrView
{
    /** rows + 1 entries; row r spans [rowPtr[r], rowPtr[r + 1]). */
    const std::size_t *rowPtr = nullptr;
    const std::uint32_t *indices = nullptr;
    const float *weights = nullptr;
    const float *bias = nullptr;
    std::size_t rows = 0;
    std::size_t cols = 0;
};

/**
 * Row-major int8 weight matrix with one symmetric per-layer scale:
 * weight = code * scale, codes in [-127, 127] (the -128 code is unused
 * so negation cannot overflow). Matches the 8-bit arm of
 * `pruning/WeightQuantizer`, which attaches its codes to the layer so
 * the quantized inference path and the fake-quant ablation axis share
 * one representation.
 */
struct Int8Matrix
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    /** weight = code * scale; 0 for an all-zero matrix. */
    float scale = 0.0f;
    std::vector<std::int8_t> codes;

    /** Symmetric per-layer quantization: scale = max|w| / 127. */
    static Int8Matrix quantize(const Matrix &w);
};

/**
 * Reusable packing scratch (one per evaluation thread; lives in the
 * InferenceWorkspace). The float kernels pack the frame batch into a
 * transposed (cols x frames) panel so 8 consecutive frames of one
 * column are contiguous; the int8 kernel packs per-frame quantized
 * rows and their scales.
 */
struct KernelScratch
{
    /** Transposed activation panel, cols x frames. */
    std::vector<float> xt;
    /** Row-major int8 activation codes, frames x cols. */
    std::vector<std::int8_t> xq;
    /** Per-frame symmetric activation scale (x = code * scale). */
    std::vector<float> frameScale;
};

/**
 * Y = X W^T + b (frames x out), dispatched. Bit-identical to the
 * scalar `gemmBatch` for every backend.
 *
 * @return an error Status on operand dimension mismatch.
 */
[[nodiscard]] Status denseForward(
    const Matrix &x, const Matrix &w, const Vector &b, Matrix &y,
    KernelScratch &scratch, KernelBackend backend = activeKernelBackend());

/**
 * Y = X W_sparse^T + bias for a CSR-compiled masked layer, dispatched.
 * Bit-identical to the dense kernels on the masked dense weights
 * (pruned terms contribute exactly +0.0f in column order).
 */
[[nodiscard]] Status sparseForward(
    const Matrix &x, const CsrView &w, Matrix &y, KernelScratch &scratch,
    KernelBackend backend = activeKernelBackend());

/**
 * Quantized Y = X W^T + b: activations are quantized per frame
 * (symmetric, dynamic), products accumulate in exact int32, and the
 * accumulator is dequantized into float as
 * `float(acc) * (w.scale * frameScale) + bias`. Scalar and AVX2 arms
 * are bit-identical; error against the float path is bounded by the
 * two quantization steps (see tensor_test's computed bound).
 */
[[nodiscard]] Status int8Forward(
    const Matrix &x, const Int8Matrix &w, const Vector &b, Matrix &y,
    KernelScratch &scratch, KernelBackend backend = activeKernelBackend());

} // namespace kernels
} // namespace darkside

#endif // DARKSIDE_TENSOR_KERNELS_HH
