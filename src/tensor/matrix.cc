#include "tensor/matrix.hh"

#include <algorithm>
#include <cmath>

namespace darkside {

void
Matrix::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

void
Matrix::randomize(Rng &rng, float stddev)
{
    for (auto &w : data_)
        w = static_cast<float>(rng.gaussian(0.0, stddev));
}

void
gemv(const Matrix &w, const Vector &x, const Vector &b, Vector &y)
{
    ds_assert(x.size() == w.cols());
    ds_assert(b.size() == w.rows());
    y.resize(w.rows());
    const std::size_t cols = w.cols();
    for (std::size_t r = 0; r < w.rows(); ++r) {
        const float *row = w.rowPtr(r);
        float acc = 0.0f;
        for (std::size_t c = 0; c < cols; ++c)
            acc += row[c] * x[c];
        y[r] = acc + b[r];
    }
}

void
addOuterProduct(Matrix &w, const Vector &a, const Vector &b, float scale)
{
    ds_assert(a.size() == w.rows());
    ds_assert(b.size() == w.cols());
    const std::size_t cols = w.cols();
    for (std::size_t r = 0; r < w.rows(); ++r) {
        float *row = w.rowPtr(r);
        const float s = scale * a[r];
        if (s == 0.0f)
            continue;
        for (std::size_t c = 0; c < cols; ++c)
            row[c] += s * b[c];
    }
}

void
gemvTransposed(const Matrix &w, const Vector &x, Vector &y)
{
    ds_assert(x.size() == w.rows());
    y.assign(w.cols(), 0.0f);
    const std::size_t cols = w.cols();
    for (std::size_t r = 0; r < w.rows(); ++r) {
        const float *row = w.rowPtr(r);
        const float xv = x[r];
        if (xv == 0.0f)
            continue;
        for (std::size_t c = 0; c < cols; ++c)
            y[c] += row[c] * xv;
    }
}

Status
gemmBatch(const Matrix &x, const Matrix &w, const Vector &b, Matrix &y)
{
    if (x.cols() != w.cols()) {
        return Status::error(
            "gemmBatch: input width " + std::to_string(x.cols()) +
            " != weight columns " + std::to_string(w.cols()));
    }
    if (b.size() != w.rows()) {
        return Status::error(
            "gemmBatch: bias size " + std::to_string(b.size()) +
            " != weight rows " + std::to_string(w.rows()));
    }
    const std::size_t frames = x.rows();
    const std::size_t in = w.cols();
    const std::size_t out = w.rows();
    y.resize(frames, out);

    // Block output rows so the active slice of W stays L1-resident
    // (~32 KB) while the frame loop sweeps over it.
    const std::size_t row_block =
        std::max<std::size_t>(4, 8192 / std::max<std::size_t>(in, 1));

    for (std::size_t r0 = 0; r0 < out; r0 += row_block) {
        const std::size_t r1 = std::min(out, r0 + row_block);
        std::size_t f = 0;
        // Four frames share each streamed weight row.
        for (; f + 4 <= frames; f += 4) {
            const float *x0 = x.rowPtr(f);
            const float *x1 = x.rowPtr(f + 1);
            const float *x2 = x.rowPtr(f + 2);
            const float *x3 = x.rowPtr(f + 3);
            for (std::size_t r = r0; r < r1; ++r) {
                const float *wr = w.rowPtr(r);
                float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
                for (std::size_t c = 0; c < in; ++c) {
                    const float wv = wr[c];
                    a0 += wv * x0[c];
                    a1 += wv * x1[c];
                    a2 += wv * x2[c];
                    a3 += wv * x3[c];
                }
                const float bias = b[r];
                y.rowPtr(f)[r] = a0 + bias;
                y.rowPtr(f + 1)[r] = a1 + bias;
                y.rowPtr(f + 2)[r] = a2 + bias;
                y.rowPtr(f + 3)[r] = a3 + bias;
            }
        }
        for (; f < frames; ++f) {
            const float *xf = x.rowPtr(f);
            float *yf = y.rowPtr(f);
            for (std::size_t r = r0; r < r1; ++r) {
                const float *wr = w.rowPtr(r);
                float acc = 0.0f;
                for (std::size_t c = 0; c < in; ++c)
                    acc += wr[c] * xf[c];
                yf[r] = acc + b[r];
            }
        }
    }
    return Status::ok();
}

void
axpy(float scale, const Vector &x, Vector &y)
{
    ds_assert(x.size() == y.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] += scale * x[i];
}

float
dot(const Vector &a, const Vector &b)
{
    ds_assert(a.size() == b.size());
    float acc = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

void
softmaxInPlace(Vector &v)
{
    ds_assert(!v.empty());
    softmaxInPlace(v.data(), v.size());
}

void
softmaxInPlace(float *v, std::size_t n)
{
    ds_assert(n > 0);
    const float peak = *std::max_element(v, v + n);
    float sum = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = std::exp(v[i] - peak);
        sum += v[i];
    }
    ds_assert(sum > 0.0f);
    const float inv = 1.0f / sum;
    for (std::size_t i = 0; i < n; ++i)
        v[i] *= inv;
}

float
logSumExp(const Vector &v)
{
    ds_assert(!v.empty());
    const float peak = *std::max_element(v.begin(), v.end());
    float sum = 0.0f;
    for (float x : v)
        sum += std::exp(x - peak);
    return peak + std::log(sum);
}

std::size_t
argMax(const Vector &v)
{
    ds_assert(!v.empty());
    return static_cast<std::size_t>(
        std::max_element(v.begin(), v.end()) - v.begin());
}

} // namespace darkside
