#include "tensor/matrix.hh"

#include <algorithm>
#include <cmath>

namespace darkside {

void
Matrix::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

void
Matrix::randomize(Rng &rng, float stddev)
{
    for (auto &w : data_)
        w = static_cast<float>(rng.gaussian(0.0, stddev));
}

void
gemv(const Matrix &w, const Vector &x, const Vector &b, Vector &y)
{
    ds_assert(x.size() == w.cols());
    ds_assert(b.size() == w.rows());
    y.resize(w.rows());
    const std::size_t cols = w.cols();
    for (std::size_t r = 0; r < w.rows(); ++r) {
        const float *row = w.rowPtr(r);
        float acc = 0.0f;
        for (std::size_t c = 0; c < cols; ++c)
            acc += row[c] * x[c];
        y[r] = acc + b[r];
    }
}

void
addOuterProduct(Matrix &w, const Vector &a, const Vector &b, float scale)
{
    ds_assert(a.size() == w.rows());
    ds_assert(b.size() == w.cols());
    const std::size_t cols = w.cols();
    for (std::size_t r = 0; r < w.rows(); ++r) {
        float *row = w.rowPtr(r);
        const float s = scale * a[r];
        if (s == 0.0f)
            continue;
        for (std::size_t c = 0; c < cols; ++c)
            row[c] += s * b[c];
    }
}

void
gemvTransposed(const Matrix &w, const Vector &x, Vector &y)
{
    ds_assert(x.size() == w.rows());
    y.assign(w.cols(), 0.0f);
    const std::size_t cols = w.cols();
    for (std::size_t r = 0; r < w.rows(); ++r) {
        const float *row = w.rowPtr(r);
        const float xv = x[r];
        if (xv == 0.0f)
            continue;
        for (std::size_t c = 0; c < cols; ++c)
            y[c] += row[c] * xv;
    }
}

void
axpy(float scale, const Vector &x, Vector &y)
{
    ds_assert(x.size() == y.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] += scale * x[i];
}

float
dot(const Vector &a, const Vector &b)
{
    ds_assert(a.size() == b.size());
    float acc = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

void
softmaxInPlace(Vector &v)
{
    ds_assert(!v.empty());
    const float peak = *std::max_element(v.begin(), v.end());
    float sum = 0.0f;
    for (auto &x : v) {
        x = std::exp(x - peak);
        sum += x;
    }
    ds_assert(sum > 0.0f);
    const float inv = 1.0f / sum;
    for (auto &x : v)
        x *= inv;
}

float
logSumExp(const Vector &v)
{
    ds_assert(!v.empty());
    const float peak = *std::max_element(v.begin(), v.end());
    float sum = 0.0f;
    for (float x : v)
        sum += std::exp(x - peak);
    return peak + std::log(sum);
}

std::size_t
argMax(const Vector &v)
{
    ds_assert(!v.empty());
    return static_cast<std::size_t>(
        std::max_element(v.begin(), v.end()) - v.begin());
}

} // namespace darkside
