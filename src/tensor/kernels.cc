#include "tensor/kernels.hh"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "telemetry/metrics.hh"
#include "tensor/kernels_detail.hh"
#include "util/logging.hh"

namespace darkside {
namespace kernels {

namespace {

/**
 * Kernel-layer telemetry (docs/METRICS.md "dnn.kernel.*"). Dispatch
 * and work counts depend only on the scoring load's shapes (windows
 * fall on fixed batchFrames boundaries), so they are deterministic —
 * thread-count-invariant — for a fixed backend. dense_blocks counts
 * the 4x8 register-tile blocks a dense (or int8) call covers and
 * spmv_rows the CSR matrix rows walked; both are computed from the
 * operand shapes in the dispatcher, so the numbers do not change when
 * a different backend executes the same call.
 */
struct KernelMetrics
{
    telemetry::Counter dispatchScalar;
    telemetry::Counter dispatchAvx2;
    telemetry::Counter denseBlocks;
    telemetry::Counter spmvRows;

    static const KernelMetrics &
    get()
    {
        static const KernelMetrics m = [] {
            auto &reg = telemetry::MetricRegistry::global();
            KernelMetrics km;
            km.dispatchScalar =
                reg.counter("dnn.kernel.dispatch.scalar", "calls");
            km.dispatchAvx2 =
                reg.counter("dnn.kernel.dispatch.avx2", "calls");
            km.denseBlocks =
                reg.counter("dnn.kernel.dense_blocks", "blocks");
            km.spmvRows = reg.counter("dnn.kernel.spmv_rows", "rows");
            return km;
        }();
        return m;
    }
};

void
countDispatch(KernelBackend backend)
{
    const KernelMetrics &m = KernelMetrics::get();
    if (backend == KernelBackend::Avx2)
        m.dispatchAvx2.add(1);
    else
        m.dispatchScalar.add(1);
}

KernelBackend
resolveBackend()
{
    if (const char *env = std::getenv("DARKSIDE_KERNEL")) {
        if (std::strcmp(env, "scalar") == 0)
            return KernelBackend::Scalar;
        if (std::strcmp(env, "avx2") == 0) {
            if (!avx2Available()) {
                fatal("DARKSIDE_KERNEL=avx2: the AVX2 kernels are not "
                      "available (%s)",
#ifdef DARKSIDE_HAVE_AVX2
                      "this CPU does not support AVX2"
#else
                      "not compiled into this build"
#endif
                );
            }
            return KernelBackend::Avx2;
        }
        if (*env != '\0')
            fatal("DARKSIDE_KERNEL: unknown backend '%s' "
                  "(expected scalar or avx2)", env);
    }
    return avx2Available() ? KernelBackend::Avx2
                           : KernelBackend::Scalar;
}

/**
 * Pack frames [0, frames) of the row-major batch into the transposed
 * (cols x frames) panel so one column's values for 8 consecutive
 * frames are contiguous.
 */
void
packTransposed(const Matrix &x, KernelScratch &scratch)
{
    const std::size_t frames = x.rows();
    const std::size_t cols = x.cols();
    scratch.xt.resize(frames * cols);
    float *xt = scratch.xt.data();
    for (std::size_t f = 0; f < frames; ++f) {
        const float *row = x.rowPtr(f);
        for (std::size_t c = 0; c < cols; ++c)
            xt[c * frames + f] = row[c];
    }
}

/**
 * Scalar dense tail for frames [f0, f1): exactly the gemv accumulation
 * order, mirroring gemmBatch's remainder loop.
 */
void
denseRowsScalar(const Matrix &x, const Matrix &w, const Vector &b,
                Matrix &y, std::size_t f0, std::size_t f1)
{
    const std::size_t in = w.cols();
    const std::size_t out = w.rows();
    for (std::size_t f = f0; f < f1; ++f) {
        const float *xf = x.rowPtr(f);
        float *yf = y.rowPtr(f);
        for (std::size_t r = 0; r < out; ++r) {
            const float *wr = w.rowPtr(r);
            float acc = 0.0f;
            for (std::size_t c = 0; c < in; ++c)
                acc += wr[c] * xf[c];
            yf[r] = acc + b[r];
        }
    }
}

/** Scalar CSR tail for frames [f0, f1), in SparseLayer::forward order. */
void
sparseRowsScalar(const Matrix &x, const CsrView &w, Matrix &y,
                 std::size_t f0, std::size_t f1)
{
    for (std::size_t f = f0; f < f1; ++f) {
        const float *xf = x.rowPtr(f);
        float *yf = y.rowPtr(f);
        for (std::size_t r = 0; r < w.rows; ++r) {
            float acc = 0.0f;
            for (std::size_t i = w.rowPtr[r]; i < w.rowPtr[r + 1]; ++i)
                acc += w.weights[i] * xf[w.indices[i]];
            yf[r] = acc + w.bias[r];
        }
    }
}

/**
 * Scalar CSR batch kernel: the stream of each output neuron is walked
 * once per four-frame group (amortising index/weight traffic), with
 * per-(frame, neuron) accumulation in entry order — the same rounding
 * sequence as the per-frame walk.
 */
void
sparseForwardScalar(const Matrix &x, const CsrView &w, Matrix &y)
{
    const std::size_t frames = x.rows();
    std::size_t f = 0;
    for (; f + 4 <= frames; f += 4) {
        const float *x0 = x.rowPtr(f);
        const float *x1 = x.rowPtr(f + 1);
        const float *x2 = x.rowPtr(f + 2);
        const float *x3 = x.rowPtr(f + 3);
        for (std::size_t r = 0; r < w.rows; ++r) {
            float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
            for (std::size_t i = w.rowPtr[r]; i < w.rowPtr[r + 1]; ++i) {
                const float wv = w.weights[i];
                const std::uint32_t c = w.indices[i];
                a0 += wv * x0[c];
                a1 += wv * x1[c];
                a2 += wv * x2[c];
                a3 += wv * x3[c];
            }
            const float bias = w.bias[r];
            y.rowPtr(f)[r] = a0 + bias;
            y.rowPtr(f + 1)[r] = a1 + bias;
            y.rowPtr(f + 2)[r] = a2 + bias;
            y.rowPtr(f + 3)[r] = a3 + bias;
        }
    }
    sparseRowsScalar(x, w, y, f, frames);
}

/**
 * Quantize the batch row-per-frame: frameScale[f] = max|x[f]| / 127,
 * codes = round(x / scale) clamped to [-127, 127]. Shared by both
 * int8 backends so the quantization decision is identical everywhere.
 */
void
packInt8(const Matrix &x, KernelScratch &scratch)
{
    const std::size_t frames = x.rows();
    const std::size_t cols = x.cols();
    scratch.xq.resize(frames * cols);
    scratch.frameScale.resize(frames);
    for (std::size_t f = 0; f < frames; ++f) {
        const float *row = x.rowPtr(f);
        std::int8_t *codes = scratch.xq.data() + f * cols;
        float peak = 0.0f;
        for (std::size_t c = 0; c < cols; ++c)
            peak = std::max(peak, std::fabs(row[c]));
        if (peak == 0.0f) {
            scratch.frameScale[f] = 0.0f;
            std::memset(codes, 0, cols);
            continue;
        }
        const float scale = peak / 127.0f;
        scratch.frameScale[f] = scale;
        for (std::size_t c = 0; c < cols; ++c) {
            float code = std::round(row[c] / scale);
            code = std::min(127.0f, std::max(-127.0f, code));
            codes[c] = static_cast<std::int8_t>(code);
        }
    }
}

/** Exact int32 dot of two int8 rows; the int8 reference arm. */
std::int32_t
dotInt8Scalar(const std::int8_t *a, const std::int8_t *b,
              std::size_t n)
{
    std::int32_t acc = 0;
    for (std::size_t c = 0; c < n; ++c) {
        acc += static_cast<std::int32_t>(a[c]) *
            static_cast<std::int32_t>(b[c]);
    }
    return acc;
}

void
int8ForwardScalar(const KernelScratch &scratch, std::size_t frames,
                  const Int8Matrix &w, const Vector &b, Matrix &y)
{
    const std::size_t cols = w.cols;
    for (std::size_t f = 0; f < frames; ++f) {
        const std::int8_t *xf = scratch.xq.data() + f * cols;
        // Dequant multiplier: one float product per frame, applied
        // identically by the AVX2 arm.
        const float m = w.scale * scratch.frameScale[f];
        float *yf = y.rowPtr(f);
        for (std::size_t r = 0; r < w.rows; ++r) {
            const std::int32_t acc = dotInt8Scalar(
                xf, w.codes.data() + r * cols, cols);
            yf[r] = static_cast<float>(acc) * m + b[r];
        }
    }
}

} // namespace

const char *
kernelBackendName(KernelBackend backend)
{
    switch (backend) {
      case KernelBackend::Scalar: return "scalar";
      case KernelBackend::Avx2: return "avx2";
    }
    return "unknown";
}

bool
avx2Available()
{
#ifdef DARKSIDE_HAVE_AVX2
    static const bool supported = __builtin_cpu_supports("avx2");
    return supported;
#else
    return false;
#endif
}

KernelBackend
activeKernelBackend()
{
    static const KernelBackend backend = resolveBackend();
    return backend;
}

Int8Matrix
Int8Matrix::quantize(const Matrix &w)
{
    Int8Matrix q;
    q.rows = w.rows();
    q.cols = w.cols();
    q.codes.resize(w.size());

    float peak = 0.0f;
    const float *data = w.data();
    for (std::size_t i = 0; i < w.size(); ++i)
        peak = std::max(peak, std::fabs(data[i]));
    if (peak == 0.0f)
        return q; // scale 0, all-zero codes
    // Same formula and rounding as WeightQuantizer's 8-bit arm, so the
    // codes the quantizer attaches to a layer are reproduced exactly.
    q.scale = peak / 127.0f;
    for (std::size_t i = 0; i < w.size(); ++i) {
        float code = std::round(data[i] / q.scale);
        code = std::min(127.0f, std::max(-127.0f, code));
        q.codes[i] = static_cast<std::int8_t>(code);
    }
    return q;
}

Status
denseForward(const Matrix &x, const Matrix &w, const Vector &b,
             Matrix &y, KernelScratch &scratch, KernelBackend backend)
{
    if (x.cols() != w.cols()) {
        return Status::error(
            "denseForward: input width " + std::to_string(x.cols()) +
            " != weight columns " + std::to_string(w.cols()));
    }
    if (b.size() != w.rows()) {
        return Status::error(
            "denseForward: bias size " + std::to_string(b.size()) +
            " != weight rows " + std::to_string(w.rows()));
    }
    const std::size_t frames = x.rows();
    const std::size_t out = w.rows();
    countDispatch(backend);
    KernelMetrics::get().denseBlocks.add(
        ((out + 3) / 4) * ((frames + 7) / 8));

    if (backend == KernelBackend::Scalar) {
        // The scalar batch kernel in tensor/matrix is the oracle.
        return gemmBatch(x, w, b, y);
    }

#ifdef DARKSIDE_HAVE_AVX2
    y.resize(frames, out);
    const std::size_t groups8 = frames / 8;
    if (groups8 > 0) {
        packTransposed(x, scratch);
        detail::denseForwardAvx2(scratch.xt.data(), frames, groups8, w,
                                 b.data(), y);
    }
    denseRowsScalar(x, w, b, y, groups8 * 8, frames);
    return Status::ok();
#else
    panic("denseForward: AVX2 backend selected in a scalar-only build");
#endif
}

Status
sparseForward(const Matrix &x, const CsrView &w, Matrix &y,
              KernelScratch &scratch, KernelBackend backend)
{
    if (!w.rowPtr || !w.bias) {
        return Status::error("sparseForward: incomplete CSR view");
    }
    if (x.cols() != w.cols) {
        return Status::error(
            "sparseForward: input width " + std::to_string(x.cols()) +
            " != sparse columns " + std::to_string(w.cols));
    }
    const std::size_t frames = x.rows();
    countDispatch(backend);
    KernelMetrics::get().spmvRows.add(w.rows);

    y.resize(frames, w.rows);
    if (backend == KernelBackend::Scalar) {
        sparseForwardScalar(x, w, y);
        return Status::ok();
    }

#ifdef DARKSIDE_HAVE_AVX2
    const std::size_t groups8 = frames / 8;
    if (groups8 > 0) {
        packTransposed(x, scratch);
        detail::sparseForwardAvx2(scratch.xt.data(), frames, groups8, w,
                                  y);
    }
    sparseRowsScalar(x, w, y, groups8 * 8, frames);
    return Status::ok();
#else
    panic("sparseForward: AVX2 backend selected in a scalar-only build");
#endif
}

Status
int8Forward(const Matrix &x, const Int8Matrix &w, const Vector &b,
            Matrix &y, KernelScratch &scratch, KernelBackend backend)
{
    if (x.cols() != w.cols) {
        return Status::error(
            "int8Forward: input width " + std::to_string(x.cols()) +
            " != weight columns " + std::to_string(w.cols));
    }
    if (b.size() != w.rows) {
        return Status::error(
            "int8Forward: bias size " + std::to_string(b.size()) +
            " != weight rows " + std::to_string(w.rows));
    }
    if (w.codes.size() != w.rows * w.cols) {
        return Status::error(
            "int8Forward: code array has " +
            std::to_string(w.codes.size()) + " entries, expected " +
            std::to_string(w.rows * w.cols));
    }
    const std::size_t frames = x.rows();
    countDispatch(backend);
    KernelMetrics::get().denseBlocks.add(((w.rows + 3) / 4) * frames);

    y.resize(frames, w.rows);
    packInt8(x, scratch);
    if (backend == KernelBackend::Scalar) {
        int8ForwardScalar(scratch, frames, w, b, y);
        return Status::ok();
    }

#ifdef DARKSIDE_HAVE_AVX2
    detail::int8ForwardAvx2(scratch.xq.data(), scratch.frameScale.data(),
                            frames, w, b.data(), y);
    return Status::ok();
#else
    panic("int8Forward: AVX2 backend selected in a scalar-only build");
#endif
}

} // namespace kernels
} // namespace darkside
