/**
 * @file
 * Top-level synthetic speech corpus: ties the phoneme inventory, lexicon,
 * grammar and frame synthesizer together and produces utterance sets and
 * frame-level training data (the stand-in for LibriSpeech train/test).
 */

#ifndef DARKSIDE_CORPUS_CORPUS_HH
#define DARKSIDE_CORPUS_CORPUS_HH

#include <memory>

#include "corpus/grammar.hh"
#include "corpus/lexicon.hh"
#include "corpus/phoneme.hh"
#include "corpus/synthesizer.hh"
#include "dnn/trainer.hh"

namespace darkside {

/** Everything needed to instantiate a synthetic language + corpus. */
struct CorpusConfig
{
    std::uint32_t phonemes = 40;
    std::uint32_t statesPerPhoneme = 3;
    std::uint32_t words = 200;
    std::uint32_t minPhonemesPerWord = 2;
    std::uint32_t maxPhonemesPerWord = 5;
    /** Followers per word in the bigram grammar. */
    std::uint32_t grammarBranching = 10;
    double eosProbability = 0.15;
    /** +/- context frames spliced into the DNN input. */
    std::size_t contextFrames = 4;
    SynthesizerConfig synthesizer;
    std::uint64_t seed = 12345;
};

/**
 * Deterministic synthetic corpus.
 */
class Corpus
{
  public:
    explicit Corpus(const CorpusConfig &config);

    const CorpusConfig &config() const { return config_; }
    const PhonemeInventory &inventory() const { return inventory_; }
    const Lexicon &lexicon() const { return *lexicon_; }
    const BigramGrammar &grammar() const { return *grammar_; }
    const FrameSynthesizer &synthesizer() const { return *synthesizer_; }

    /** DNN input width after splicing. */
    std::size_t spliceDim() const;

    /** Number of DNN output classes. */
    std::size_t classCount() const { return inventory_.pdfCount(); }

    /**
     * Sample a set of utterances (sentences + rendered frames).
     * @param count number of utterances
     * @param seed stream seed (use different seeds for train/test)
     */
    std::vector<Utterance> sampleUtterances(std::size_t count,
                                            std::uint64_t seed) const;

    /**
     * Flatten utterances into spliced, labelled frames for training or
     * evaluating the acoustic model.
     */
    FrameDataset frameDataset(const std::vector<Utterance> &utts) const;

    /** Spliced DNN inputs for one utterance (decode-time path). */
    std::vector<Vector> spliceUtterance(const Utterance &utt) const;

  private:
    CorpusConfig config_;
    PhonemeInventory inventory_;
    std::unique_ptr<Lexicon> lexicon_;
    std::unique_ptr<BigramGrammar> grammar_;
    std::unique_ptr<FrameSynthesizer> synthesizer_;
};

} // namespace darkside

#endif // DARKSIDE_CORPUS_CORPUS_HH
