/**
 * @file
 * Pronunciation lexicon: each word is a sequence of phonemes. Generated
 * deterministically from a seed; pronunciations are unique so the
 * decoding task is well-posed.
 */

#ifndef DARKSIDE_CORPUS_LEXICON_HH
#define DARKSIDE_CORPUS_LEXICON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/phoneme.hh"
#include "util/rng.hh"

namespace darkside {

/** Identifier of a word; 0-based, dense. */
using WordId = std::uint32_t;

/**
 * Randomly generated but collision-free pronunciation lexicon.
 */
class Lexicon
{
  public:
    /**
     * @param inventory phoneme inventory to draw from
     * @param words vocabulary size
     * @param min_phonemes shortest pronunciation
     * @param max_phonemes longest pronunciation
     * @param seed RNG seed
     */
    Lexicon(const PhonemeInventory &inventory, std::uint32_t words,
            std::uint32_t min_phonemes, std::uint32_t max_phonemes,
            std::uint64_t seed);

    std::uint32_t wordCount() const
    {
        return static_cast<std::uint32_t>(pronunciations_.size());
    }

    /** Phoneme sequence of a word. */
    const std::vector<std::uint32_t> &
    pronunciation(WordId word) const
    {
        ds_assert(word < wordCount());
        return pronunciations_[word];
    }

    /** Synthetic spelling like "w042" for report output. */
    std::string spell(WordId word) const;

    /** Sum of pronunciation lengths (graph-size estimate input). */
    std::size_t totalPhonemes() const;

  private:
    std::vector<std::vector<std::uint32_t>> pronunciations_;
};

} // namespace darkside

#endif // DARKSIDE_CORPUS_LEXICON_HH
