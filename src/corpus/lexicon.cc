#include "corpus/lexicon.hh"

#include <cstdio>
#include <set>

namespace darkside {

Lexicon::Lexicon(const PhonemeInventory &inventory, std::uint32_t words,
                 std::uint32_t min_phonemes, std::uint32_t max_phonemes,
                 std::uint64_t seed)
{
    ds_assert(words > 0);
    ds_assert(min_phonemes >= 1);
    ds_assert(max_phonemes >= min_phonemes);

    Rng rng(seed);
    std::set<std::vector<std::uint32_t>> seen;
    pronunciations_.reserve(words);

    std::size_t attempts = 0;
    while (pronunciations_.size() < words) {
        if (++attempts > static_cast<std::size_t>(words) * 1000) {
            fatal("lexicon: cannot generate %u unique pronunciations from "
                  "%u phonemes (lengths %u..%u)",
                  words, inventory.phonemeCount(), min_phonemes,
                  max_phonemes);
        }
        const auto len = static_cast<std::uint32_t>(
            rng.range(min_phonemes, max_phonemes));
        std::vector<std::uint32_t> pron(len);
        for (auto &p : pron) {
            p = static_cast<std::uint32_t>(
                rng.below(inventory.phonemeCount()));
        }
        if (seen.insert(pron).second)
            pronunciations_.push_back(std::move(pron));
    }
}

std::string
Lexicon::spell(WordId word) const
{
    ds_assert(word < wordCount());
    char buf[16];
    std::snprintf(buf, sizeof(buf), "w%03u", word);
    return buf;
}

std::size_t
Lexicon::totalPhonemes() const
{
    std::size_t total = 0;
    for (const auto &p : pronunciations_)
        total += p.size();
    return total;
}

} // namespace darkside
