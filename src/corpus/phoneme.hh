/**
 * @file
 * Phoneme inventory: maps (phoneme, HMM state) pairs to the pdf ids the
 * acoustic model scores. The paper's DNN emits likelihoods for 3482
 * "sub-phonemes"; here a sub-phoneme is one HMM state of one phoneme.
 */

#ifndef DARKSIDE_CORPUS_PHONEME_HH
#define DARKSIDE_CORPUS_PHONEME_HH

#include <cstdint>

#include "util/logging.hh"

namespace darkside {

/** Identifier of a sub-phoneme class (DNN output index). */
using PdfId = std::uint32_t;

/**
 * Fixed-size phoneme set where each phoneme is a left-to-right HMM of
 * `statesPerPhoneme` states.
 */
class PhonemeInventory
{
  public:
    /**
     * @param phonemes number of phonemes in the language
     * @param states_per_phoneme HMM states per phoneme (typically 3)
     */
    PhonemeInventory(std::uint32_t phonemes,
                     std::uint32_t states_per_phoneme = 3)
        : phonemes_(phonemes), statesPerPhoneme_(states_per_phoneme)
    {
        ds_assert(phonemes > 0);
        ds_assert(states_per_phoneme > 0);
    }

    std::uint32_t phonemeCount() const { return phonemes_; }
    std::uint32_t statesPerPhoneme() const { return statesPerPhoneme_; }

    /** Total sub-phoneme classes = DNN output width. */
    std::uint32_t pdfCount() const { return phonemes_ * statesPerPhoneme_; }

    /** Pdf id of HMM state `state` of `phoneme`. */
    PdfId
    pdf(std::uint32_t phoneme, std::uint32_t state) const
    {
        ds_assert(phoneme < phonemes_);
        ds_assert(state < statesPerPhoneme_);
        return phoneme * statesPerPhoneme_ + state;
    }

    /** Phoneme owning a pdf id. */
    std::uint32_t
    phonemeOf(PdfId pdf) const
    {
        ds_assert(pdf < pdfCount());
        return pdf / statesPerPhoneme_;
    }

    /** HMM state index (within its phoneme) of a pdf id. */
    std::uint32_t
    stateOf(PdfId pdf) const
    {
        ds_assert(pdf < pdfCount());
        return pdf % statesPerPhoneme_;
    }

  private:
    std::uint32_t phonemes_;
    std::uint32_t statesPerPhoneme_;
};

} // namespace darkside

#endif // DARKSIDE_CORPUS_PHONEME_HH
