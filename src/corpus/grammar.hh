/**
 * @file
 * Bigram language model over the synthetic vocabulary. Each word has a
 * sparse follower set with Zipf-flavoured probabilities plus an
 * end-of-sentence probability; sentences start from a start distribution.
 * The WFST builder turns these log-probabilities into cross-word arc
 * weights exactly as a Kaldi grammar FST would.
 */

#ifndef DARKSIDE_CORPUS_GRAMMAR_HH
#define DARKSIDE_CORPUS_GRAMMAR_HH

#include <cstdint>
#include <vector>

#include "corpus/lexicon.hh"
#include "util/rng.hh"

namespace darkside {

/**
 * Sparse bigram grammar.
 */
class BigramGrammar
{
  public:
    /** One follower of a word. */
    struct Successor
    {
        WordId word;
        /** Conditional probability P(word | predecessor). */
        double probability;
    };

    /**
     * @param vocabulary vocabulary size
     * @param branching followers per word (grammar perplexity knob)
     * @param eos_probability chance a sentence ends after any word
     * @param seed RNG seed
     */
    BigramGrammar(std::uint32_t vocabulary, std::uint32_t branching,
                  double eos_probability, std::uint64_t seed);

    std::uint32_t vocabularySize() const
    {
        return static_cast<std::uint32_t>(successors_.size());
    }

    /** Followers of `word` (probabilities sum to 1 - eosProbability). */
    const std::vector<Successor> &successors(WordId word) const
    {
        ds_assert(word < vocabularySize());
        return successors_[word];
    }

    /** Start-of-sentence distribution (sums to 1). */
    const std::vector<Successor> &startWords() const { return start_; }

    double eosProbability() const { return eosProbability_; }

    /** -log P(next | prev); +inf when the bigram does not exist. */
    double transitionCost(WordId prev, WordId next) const;

    /** -log P(first word); +inf when it cannot start a sentence. */
    double startCost(WordId word) const;

    /** -log P(eos | word). */
    double eosCost(WordId word) const;

    /** Sample a sentence (bounded length) from the grammar. */
    std::vector<WordId> sampleSentence(Rng &rng,
                                       std::size_t max_words = 24) const;

  private:
    std::vector<std::vector<Successor>> successors_;
    std::vector<Successor> start_;
    double eosProbability_;
};

} // namespace darkside

#endif // DARKSIDE_CORPUS_GRAMMAR_HH
