#include "corpus/synthesizer.hh"

namespace darkside {

FrameSynthesizer::FrameSynthesizer(const PhonemeInventory &inventory,
                                   const SynthesizerConfig &config)
    : inventory_(inventory), config_(config)
{
    ds_assert(config.featureDim > 0);
    ds_assert(config.selfLoopProb >= 0.0 && config.selfLoopProb < 1.0);

    Rng rng(config.seed);
    means_.resize(inventory.pdfCount());

    if (config.confusableClusters == 0) {
        for (auto &mean : means_) {
            mean.resize(config.featureDim);
            for (auto &m : mean) {
                m = static_cast<float>(
                    rng.gaussian(0.0, config.meanRadius));
            }
        }
        return;
    }

    // Clustered means: phonemes share cluster centres; the pdfs of a
    // phoneme (and of its cluster mates) differ only by the
    // within-cluster spread.
    std::vector<Vector> centers(config.confusableClusters);
    for (auto &center : centers) {
        center.resize(config.featureDim);
        for (auto &c : center)
            c = static_cast<float>(rng.gaussian(0.0, config.meanRadius));
    }
    const double spread = config.clusterSpread * config.meanRadius;
    for (PdfId pdf = 0; pdf < inventory.pdfCount(); ++pdf) {
        const std::uint32_t cluster =
            inventory.phonemeOf(pdf) % config.confusableClusters;
        means_[pdf].resize(config.featureDim);
        for (std::size_t d = 0; d < config.featureDim; ++d) {
            means_[pdf][d] = centers[cluster][d] +
                static_cast<float>(rng.gaussian(0.0, spread));
        }
    }
}

Utterance
FrameSynthesizer::synthesize(const std::vector<WordId> &words,
                             const Lexicon &lexicon, Rng &rng) const
{
    Utterance utt;
    utt.words = words;

    // Speaker/channel offset: constant over the utterance.
    Vector offset(config_.featureDim, 0.0f);
    if (config_.speakerStddev > 0.0) {
        for (auto &o : offset) {
            o = static_cast<float>(
                rng.gaussian(0.0, config_.speakerStddev));
        }
    }

    for (WordId word : words) {
        for (std::uint32_t phoneme : lexicon.pronunciation(word)) {
            for (std::uint32_t s = 0; s < inventory_.statesPerPhoneme();
                 ++s) {
                const PdfId pdf = inventory_.pdf(phoneme, s);
                // Geometric duration: always at least one frame.
                do {
                    Vector frame(config_.featureDim);
                    const Vector &mean = means_[pdf];
                    for (std::size_t d = 0; d < frame.size(); ++d) {
                        frame[d] = mean[d] + offset[d] +
                            static_cast<float>(
                                rng.gaussian(0.0, config_.noiseStddev));
                    }
                    utt.frames.push_back(std::move(frame));
                    utt.alignment.push_back(pdf);
                } while (rng.chance(config_.selfLoopProb));
            }
        }
    }
    return utt;
}

std::vector<Vector>
spliceFrames(const std::vector<Vector> &frames, std::size_t context)
{
    std::vector<Vector> spliced;
    if (frames.empty())
        return spliced;

    const std::size_t dim = frames.front().size();
    const std::size_t window = 2 * context + 1;
    spliced.reserve(frames.size());

    const auto count = static_cast<std::ptrdiff_t>(frames.size());
    for (std::ptrdiff_t t = 0; t < count; ++t) {
        Vector in(window * dim);
        for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(window);
             ++k) {
            std::ptrdiff_t src =
                t + k - static_cast<std::ptrdiff_t>(context);
            src = std::max<std::ptrdiff_t>(0,
                                           std::min(src, count - 1));
            const Vector &frame = frames[static_cast<std::size_t>(src)];
            ds_assert(frame.size() == dim);
            std::copy(frame.begin(), frame.end(),
                      in.begin() + static_cast<std::ptrdiff_t>(
                          static_cast<std::size_t>(k) * dim));
        }
        spliced.push_back(std::move(in));
    }
    return spliced;
}

} // namespace darkside
