/**
 * @file
 * Synthetic acoustic frame generation. Each sub-phoneme (pdf) owns a
 * Gaussian in feature space; an utterance is rendered by walking the HMM
 * state sequence of its words with geometric state durations and emitting
 * noisy feature frames. This substitutes for LibriSpeech audio (see
 * DESIGN.md): it exercises the same pipeline (frames -> DNN -> scores ->
 * Viterbi) with controllable class separability.
 */

#ifndef DARKSIDE_CORPUS_SYNTHESIZER_HH
#define DARKSIDE_CORPUS_SYNTHESIZER_HH

#include <cstdint>
#include <vector>

#include "corpus/lexicon.hh"
#include "corpus/phoneme.hh"
#include "tensor/matrix.hh"

namespace darkside {

/** One synthetic utterance with its ground truth. */
struct Utterance
{
    /**
     * Stable identity of the utterance, derived from the sampling seed
     * and the index within the sampled set. Unlike the object's address
     * it survives vector reallocation and copies, so caches (the
     * acoustic-score cache in AsrSystem) can key on it safely. 0 marks
     * a hand-built utterance with no assigned identity.
     */
    std::uint64_t id = 0;
    /** Spoken word sequence (reference transcript). */
    std::vector<WordId> words;
    /** Per-frame raw feature vectors (unspliced). */
    std::vector<Vector> frames;
    /** Per-frame ground-truth pdf id (forced alignment). */
    std::vector<PdfId> alignment;
};

/** Emission / duration parameters. */
struct SynthesizerConfig
{
    std::uint32_t featureDim = 20;
    /** Stddev of each pdf's mean-vector components (class separation). */
    double meanRadius = 1.0;
    /** Stddev of per-frame emission noise. */
    double noiseStddev = 0.55;
    /** HMM self-loop probability; mean frames per state = 1/(1-p). */
    double selfLoopProb = 0.5;
    /**
     * Number of confusable phoneme clusters (0 = every class mean is
     * independent). Real sub-phonemes are not uniformly spread in
     * acoustic space: vowels resemble vowels, fricatives resemble
     * fricatives. With clustering, phonemes in the same cluster share
     * a centre and differ only by `clusterSpread * meanRadius`, which
     * produces the broad, confusable posteriors (and non-zero WER) of
     * real acoustic models.
     */
    std::uint32_t confusableClusters = 0;
    /** Relative within-cluster spread of class means. */
    double clusterSpread = 0.35;
    /**
     * Stddev of a per-utterance constant feature offset (speaker /
     * channel variation). Unlike the per-frame noise it cannot be
     * averaged away over a state's frames, so it produces the
     * *correlated* acoustic errors behind real word error rates.
     */
    double speakerStddev = 0.0;
    std::uint64_t seed = 7;
};

/**
 * Renders word sequences to feature frames plus forced alignments.
 */
class FrameSynthesizer
{
  public:
    FrameSynthesizer(const PhonemeInventory &inventory,
                     const SynthesizerConfig &config);

    std::uint32_t featureDim() const { return config_.featureDim; }
    const SynthesizerConfig &config() const { return config_; }

    /** Gaussian mean of a pdf class. */
    const Vector &classMean(PdfId pdf) const { return means_.at(pdf); }

    /**
     * Render one utterance.
     * @param words the sentence to speak
     * @param lexicon pronunciations
     * @param rng per-utterance randomness (durations and noise)
     */
    Utterance synthesize(const std::vector<WordId> &words,
                         const Lexicon &lexicon, Rng &rng) const;

  private:
    const PhonemeInventory &inventory_;
    SynthesizerConfig config_;
    std::vector<Vector> means_;
};

/**
 * Splice raw frames with +/- `context` neighbours (edge frames repeat),
 * producing DNN inputs of size (2 * context + 1) * featureDim — the
 * paper's DNN splices +/-4 frames of 40 features into 360 inputs.
 */
std::vector<Vector> spliceFrames(const std::vector<Vector> &frames,
                                 std::size_t context);

} // namespace darkside

#endif // DARKSIDE_CORPUS_SYNTHESIZER_HH
