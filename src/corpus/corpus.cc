#include "corpus/corpus.hh"

#include "fault/fault.hh"

namespace darkside {

Corpus::Corpus(const CorpusConfig &config)
    : config_(config),
      inventory_(config.phonemes, config.statesPerPhoneme)
{
    lexicon_ = std::make_unique<Lexicon>(
        inventory_, config.words, config.minPhonemesPerWord,
        config.maxPhonemesPerWord, config.seed ^ 0x11ull);
    grammar_ = std::make_unique<BigramGrammar>(
        config.words, config.grammarBranching, config.eosProbability,
        config.seed ^ 0x22ull);
    auto synth_config = config.synthesizer;
    synth_config.seed ^= config.seed;
    synthesizer_ =
        std::make_unique<FrameSynthesizer>(inventory_, synth_config);
}

std::size_t
Corpus::spliceDim() const
{
    return (2 * config_.contextFrames + 1) *
        synthesizer_->featureDim();
}

std::vector<Utterance>
Corpus::sampleUtterances(std::size_t count, std::uint64_t seed) const
{
    Rng rng(seed);
    std::vector<Utterance> utts;
    utts.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const auto sentence = grammar_->sampleSentence(rng);
        utts.push_back(synthesizer_->synthesize(sentence, *lexicon_, rng));
        // Stable identity: Fibonacci-hash the (seed, index) pair so
        // utterances from different sets never collide in score caches.
        utts.back().id =
            (seed + 1) * 0x9E3779B97F4A7C15ull + (i + 1);
    }
    return utts;
}

FrameDataset
Corpus::frameDataset(const std::vector<Utterance> &utts) const
{
    FrameDataset dataset;
    for (const auto &utt : utts) {
        auto spliced = spliceFrames(utt.frames, config_.contextFrames);
        ds_assert(spliced.size() == utt.alignment.size());
        for (std::size_t t = 0; t < spliced.size(); ++t) {
            dataset.push_back(
                {std::move(spliced[t]), utt.alignment[t]});
        }
    }
    return dataset;
}

std::vector<Vector>
Corpus::spliceUtterance(const Utterance &utt) const
{
    // Feature extraction is the first per-utterance stage; a fault
    // here throws to the isolation boundary and degrades just this
    // utterance.
    if (auto kind =
            FaultInjector::global().trigger("corpus.splice", utt.id))
        throw FaultError("corpus.splice", *kind, utt.id);
    return spliceFrames(utt.frames, config_.contextFrames);
}

} // namespace darkside
