#include "corpus/grammar.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace darkside {

namespace {

constexpr double kInfCost = std::numeric_limits<double>::infinity();

/**
 * Draw `count` distinct words and attach Zipf-flavoured probabilities
 * normalised to `mass`.
 */
std::vector<BigramGrammar::Successor>
sampleSuccessors(Rng &rng, std::uint32_t vocabulary, std::uint32_t count,
                 double mass)
{
    std::set<WordId> chosen;
    while (chosen.size() < count)
        chosen.insert(static_cast<WordId>(rng.below(vocabulary)));

    std::vector<BigramGrammar::Successor> successors;
    successors.reserve(chosen.size());
    double total = 0.0;
    std::uint32_t rank = 1;
    for (WordId w : chosen) {
        // Zipf weight with random jitter so follower sets differ.
        const double weight =
            (1.0 / static_cast<double>(rank)) * rng.uniform(0.5, 1.5);
        successors.push_back({w, weight});
        total += weight;
        ++rank;
    }
    for (auto &s : successors)
        s.probability = s.probability / total * mass;
    return successors;
}

} // namespace

BigramGrammar::BigramGrammar(std::uint32_t vocabulary,
                             std::uint32_t branching,
                             double eos_probability, std::uint64_t seed)
    : eosProbability_(eos_probability)
{
    ds_assert(vocabulary > 0);
    ds_assert(branching > 0 && branching <= vocabulary);
    ds_assert(eos_probability > 0.0 && eos_probability < 1.0);

    Rng rng(seed);
    successors_.resize(vocabulary);
    for (std::uint32_t w = 0; w < vocabulary; ++w) {
        successors_[w] = sampleSuccessors(rng, vocabulary, branching,
                                          1.0 - eos_probability);
    }

    const std::uint32_t start_count =
        std::min(vocabulary, std::max<std::uint32_t>(branching * 2, 4u));
    start_ = sampleSuccessors(rng, vocabulary, start_count, 1.0);
}

double
BigramGrammar::transitionCost(WordId prev, WordId next) const
{
    for (const auto &s : successors(prev)) {
        if (s.word == next)
            return -std::log(s.probability);
    }
    return kInfCost;
}

double
BigramGrammar::startCost(WordId word) const
{
    for (const auto &s : start_) {
        if (s.word == word)
            return -std::log(s.probability);
    }
    return kInfCost;
}

double
BigramGrammar::eosCost(WordId word) const
{
    ds_assert(word < vocabularySize());
    return -std::log(eosProbability_);
}

std::vector<WordId>
BigramGrammar::sampleSentence(Rng &rng, std::size_t max_words) const
{
    ds_assert(max_words >= 1);
    std::vector<WordId> sentence;

    std::vector<double> start_weights;
    start_weights.reserve(start_.size());
    for (const auto &s : start_)
        start_weights.push_back(s.probability);
    sentence.push_back(start_[rng.categorical(start_weights)].word);

    while (sentence.size() < max_words) {
        if (rng.chance(eosProbability_))
            break;
        const auto &succ = successors(sentence.back());
        std::vector<double> weights;
        weights.reserve(succ.size());
        for (const auto &s : succ)
            weights.push_back(s.probability);
        sentence.push_back(succ[rng.categorical(weights)].word);
    }
    return sentence;
}

} // namespace darkside
