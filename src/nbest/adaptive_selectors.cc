#include "nbest/adaptive_selectors.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "telemetry/metrics.hh"
#include "util/logging.hh"

namespace darkside {

namespace {

/**
 * decode.selector.* handles. Registered as a whole family the first
 * time either adaptive selector publishes, so the closed-namespace
 * validation (tools/metrics_check) can require every member whenever
 * any is present. Everything here is deterministic: integer event
 * counts and raw-double histogram observations (bucket counts plus
 * exact commutative min/max), invariant under the worker count.
 */
struct SelectorTelemetry
{
    telemetry::Counter frames;
    telemetry::Counter thresholdHits;
    telemetry::Counter capHits;
    telemetry::Histogram beamWidth;
    telemetry::Histogram survivors;
    telemetry::Histogram entropy;
};

const SelectorTelemetry &
selectorTelemetry()
{
    static const SelectorTelemetry t = [] {
        auto &reg = telemetry::MetricRegistry::global();
        SelectorTelemetry s;
        s.frames = reg.counter("decode.selector.frames", "frames");
        s.thresholdHits =
            reg.counter("decode.selector.threshold_hits", "hypotheses");
        s.capHits =
            reg.counter("decode.selector.cap_hits", "hypotheses");
        s.beamWidth = reg.histogram("decode.selector.beam_width",
                                    "logcost", {0.0, 20.0, 40});
        s.survivors = reg.histogram("decode.selector.survivors",
                                    "hypotheses", {0.0, 2048.0, 32});
        s.entropy = reg.histogram("decode.selector.entropy", "ratio",
                                  {0.0, 1.0, 20});
        return s;
    }();
    return t;
}

/**
 * Normalized entropy of the softmax over negative costs, relative to
 * the frame minimum: with d_i = cost_i - min, w_i = exp(-d_i) and
 * Z = sum(w_i), H = ln Z + sum(w_i * d_i) / Z, divided by ln(n) so a
 * uniform frame reads 1.0 and a single dominant hypothesis reads ~0.
 * The relative offsets keep exp() in range for any absolute costs.
 */
double
normalizedEntropy(const std::unordered_map<StateId, Hypothesis> &table,
                  float best)
{
    const std::size_t n = table.size();
    if (n < 2)
        return 0.0;
    double z = 0.0;
    double weighted = 0.0;
    for (const auto &[state, hyp] : table) {
        const double d = static_cast<double>(hyp.cost) -
            static_cast<double>(best);
        const double w = std::exp(-d);
        z += w;
        weighted += w * d;
    }
    const double h = std::log(z) + weighted / z;
    return std::min(1.0, std::max(0.0, h / std::log(
        static_cast<double>(n))));
}

} // namespace

RelativeThresholdSelector::RelativeThresholdSelector(
    float margin, std::size_t max_survivors)
    : margin_(margin), maxSurvivors_(max_survivors),
      bestCost_(std::numeric_limits<float>::infinity()), closed_(false)
{
    ds_assert(margin > 0.0f);
    ds_assert(max_survivors > 0);
    selectorTelemetry();
}

void
RelativeThresholdSelector::beginFrame()
{
    stats_ = SelectorFrameStats{};
    table_.clear();
    bestCost_ = std::numeric_limits<float>::infinity();
    closed_ = false;
}

void
RelativeThresholdSelector::insert(const Hypothesis &hyp)
{
    ++stats_.insertions;
    bestCost_ = std::min(bestCost_, hyp.cost);
    auto [it, inserted] = table_.emplace(hyp.state, hyp);
    if (!inserted) {
        ++stats_.recombinations;
        if (hyp.cost < it->second.cost)
            it->second = hyp;
    }
}

float
RelativeThresholdSelector::finishFrame(std::vector<Hypothesis> &out)
{
    // Pass-2 counters restart here so a repeated finishFrame() on the
    // same frame reports identical stats instead of double-counting.
    stats_.rejections = 0;
    stats_.evictions = 0;
    out.clear();
    const float best = table_.empty()
        ? std::numeric_limits<float>::infinity()
        : bestCost_;
    const float threshold = best + margin_;

    out.reserve(table_.size());
    for (const auto &[state, hyp] : table_) {
        if (hyp.cost <= threshold)
            out.push_back(hyp);
        else
            ++stats_.rejections;
    }
    if (out.size() > maxSurvivors_) {
        std::partial_sort(
            out.begin(),
            out.begin() + static_cast<std::ptrdiff_t>(maxSurvivors_),
            out.end(),
            [](const Hypothesis &a, const Hypothesis &b) {
                return a.cost < b.cost;
            });
        stats_.evictions = out.size() - maxSurvivors_;
        out.resize(maxSurvivors_);
    }
    stats_.survivors = out.size();

    if (!closed_) {
        closed_ = true;
        const SelectorTelemetry &t = selectorTelemetry();
        t.frames.add(1);
        t.thresholdHits.add(stats_.rejections);
        t.capHits.add(stats_.evictions);
        t.beamWidth.observe(margin_);
        t.survivors.observe(static_cast<double>(out.size()));
    }
    // The frame-best hypothesis always survives (offset 0 under any
    // margin, first under the cap's sort), so `best` is also the
    // survivor minimum.
    return best;
}

AdaptiveBeamSelector::AdaptiveBeamSelector(float min_margin,
                                           float max_margin,
                                           float ema_alpha)
    : minMargin_(min_margin), maxMargin_(max_margin),
      emaAlpha_(ema_alpha),
      bestCost_(std::numeric_limits<float>::infinity()),
      margin_(max_margin), entropyEma_(0.0), haveEma_(false),
      closed_(false)
{
    ds_assert(min_margin > 0.0f);
    ds_assert(max_margin >= min_margin);
    ds_assert(ema_alpha > 0.0f && ema_alpha <= 1.0f);
    selectorTelemetry();
}

void
AdaptiveBeamSelector::startUtterance()
{
    // The entropy signal is per-utterance: a reused selector must not
    // carry one utterance's smoothed margin into the next, or results
    // would depend on decode order.
    entropyEma_ = 0.0;
    haveEma_ = false;
    margin_ = maxMargin_;
}

void
AdaptiveBeamSelector::beginFrame()
{
    stats_ = SelectorFrameStats{};
    table_.clear();
    bestCost_ = std::numeric_limits<float>::infinity();
    closed_ = false;
}

void
AdaptiveBeamSelector::insert(const Hypothesis &hyp)
{
    ++stats_.insertions;
    bestCost_ = std::min(bestCost_, hyp.cost);
    auto [it, inserted] = table_.emplace(hyp.state, hyp);
    if (!inserted) {
        ++stats_.recombinations;
        if (hyp.cost < it->second.cost)
            it->second = hyp;
    }
}

float
AdaptiveBeamSelector::finishFrame(std::vector<Hypothesis> &out)
{
    stats_.rejections = 0;
    out.clear();
    if (table_.empty()) {
        stats_.survivors = 0;
        if (!closed_) {
            closed_ = true;
            const SelectorTelemetry &t = selectorTelemetry();
            t.frames.add(1);
            t.beamWidth.observe(margin_);
            t.survivors.observe(0.0);
        }
        return std::numeric_limits<float>::infinity();
    }

    // The signal updates once per frame: a flat distribution (high
    // entropy — the dark-side condition) narrows the margin toward
    // minMargin_ to contain the explosion; a peaked one relaxes it
    // back toward maxMargin_. Repeated finishFrame() calls reuse the
    // frame's margin, so the selection is idempotent.
    if (!closed_) {
        const double h = normalizedEntropy(table_, bestCost_);
        entropyEma_ = haveEma_
            ? emaAlpha_ * h + (1.0 - emaAlpha_) * entropyEma_
            : h;
        haveEma_ = true;
        margin_ = maxMargin_ -
            static_cast<float>(entropyEma_) * (maxMargin_ - minMargin_);
    }
    const float threshold = bestCost_ + margin_;

    out.reserve(table_.size());
    for (const auto &[state, hyp] : table_) {
        if (hyp.cost <= threshold)
            out.push_back(hyp);
        else
            ++stats_.rejections;
    }
    stats_.survivors = out.size();

    if (!closed_) {
        closed_ = true;
        const SelectorTelemetry &t = selectorTelemetry();
        t.frames.add(1);
        t.thresholdHits.add(stats_.rejections);
        t.beamWidth.observe(margin_);
        t.survivors.observe(static_cast<double>(out.size()));
        t.entropy.observe(entropyEma_);
    }
    // The frame-best hypothesis survives any margin, so bestCost_ is
    // the survivor minimum.
    return bestCost_;
}

} // namespace darkside
