#include "nbest/histogram_selector.hh"

#include <algorithm>
#include <limits>

namespace darkside {

HistogramPruning::HistogramPruning(std::size_t max_active,
                                   std::size_t buckets,
                                   float cost_range)
    : maxActive_(max_active), buckets_(buckets), costRange_(cost_range),
      bestCost_(std::numeric_limits<float>::infinity()),
      lastThreshold_(std::numeric_limits<float>::infinity())
{
    ds_assert(max_active > 0);
    ds_assert(buckets >= 2);
    ds_assert(cost_range > 0.0f);
}

void
HistogramPruning::beginFrame()
{
    stats_ = SelectorFrameStats{};
    table_.clear();
    bestCost_ = std::numeric_limits<float>::infinity();
}

void
HistogramPruning::insert(const Hypothesis &hyp)
{
    ++stats_.insertions;
    bestCost_ = std::min(bestCost_, hyp.cost);
    auto [it, inserted] = table_.emplace(hyp.state, hyp);
    if (!inserted) {
        ++stats_.recombinations;
        if (hyp.cost < it->second.cost)
            it->second = hyp;
    }
}

float
HistogramPruning::finishFrame(std::vector<Hypothesis> &out)
{
    // Pass-2 counters restart here so a repeated finishFrame() on the
    // same frame reports identical stats instead of double-counting
    // the rejections.
    stats_.rejections = 0;
    stats_.evictions = 0;
    out.clear();
    out.reserve(std::min(table_.size(), maxActive_));
    // The frame-best hypothesis always survives (its cost offset is 0,
    // under any threshold), so bestCost_ is also the survivor minimum.
    const float best = table_.empty()
        ? std::numeric_limits<float>::infinity()
        : bestCost_;

    if (table_.size() <= maxActive_) {
        for (const auto &[state, hyp] : table_)
            out.push_back(hyp);
        lastThreshold_ = std::numeric_limits<float>::infinity();
        stats_.survivors = out.size();
        return best;
    }

    // Pass 1: histogram of costs relative to the frame best.
    std::vector<std::size_t> histogram(buckets_, 0);
    const float scale =
        static_cast<float>(buckets_ - 1) / costRange_;
    for (const auto &[state, hyp] : table_) {
        auto bucket = static_cast<std::size_t>(
            std::max(0.0f, hyp.cost - bestCost_) * scale);
        bucket = std::min(bucket, buckets_ - 1);
        ++histogram[bucket];
    }

    // Find the first bucket whose cumulative count reaches the budget.
    std::size_t cumulative = 0;
    std::size_t cut_bucket = buckets_ - 1;
    for (std::size_t b = 0; b < buckets_; ++b) {
        cumulative += histogram[b];
        if (cumulative > maxActive_) {
            cut_bucket = b;
            break;
        }
    }
    const float threshold = bestCost_ +
        static_cast<float>(cut_bucket + 1) / scale;
    lastThreshold_ = threshold;

    // Pass 2: keep hypotheses under the threshold. Because buckets are
    // coarse this keeps *approximately* maxActive_ hypotheses — the
    // same looseness/simplicity trade the paper's hash makes, paid in
    // a different currency (a second pass instead of evictions).
    for (const auto &[state, hyp] : table_) {
        if (hyp.cost <= threshold)
            out.push_back(hyp);
        else
            ++stats_.rejections;
    }
    stats_.evictions = table_.size() - out.size();
    stats_.survivors = out.size();
    return best;
}

} // namespace darkside
