#include "nbest/max_heap_set.hh"

#include <algorithm>

namespace darkside {

MaxHeapSet::MaxHeapSet(std::size_t ways)
    : entries_(ways), size_(0)
{
    ds_assert(ways >= 1 && ways <= 255);
    heap_.reserve(ways);
    maxPath_.reserve(8);
}

void
MaxHeapSet::clear()
{
    size_ = 0;
    heap_.clear();
    maxPath_.clear();
}

int
MaxHeapSet::find(StateId state) const
{
    for (std::size_t i = 0; i < size_; ++i) {
        if (entries_[i].state == state)
            return static_cast<int>(i);
    }
    return -1;
}

const Hypothesis &
MaxHeapSet::entry(std::size_t i) const
{
    ds_assert(i < size_);
    return entries_[i];
}

float
MaxHeapSet::worstCost() const
{
    ds_assert(size_ > 0);
    return entries_[heap_[0]].cost;
}

float
MaxHeapSet::costAtHeap(std::size_t pos) const
{
    return entries_[heap_[pos]].cost;
}

void
MaxHeapSet::insert(const Hypothesis &hyp)
{
    ds_assert(!full());
    const auto slot = static_cast<std::uint8_t>(size_);
    entries_[size_] = hyp;
    heap_.push_back(slot);
    ++size_;
    siftUp(heap_.size() - 1);
    rebuildMaxPath();
}

void
MaxHeapSet::recombine(int slot, const Hypothesis &hyp)
{
    ds_assert(slot >= 0 && static_cast<std::size_t>(slot) < size_);
    ds_assert(entries_[slot].state == hyp.state);
    ds_assert(hyp.cost <= entries_[slot].cost);
    entries_[slot] = hyp;
    // The cost decreased: the node may now violate the max-heap property
    // towards its children; sift its heap position down.
    for (std::size_t pos = 0; pos < heap_.size(); ++pos) {
        if (heap_[pos] == slot) {
            siftDown(pos);
            break;
        }
    }
    rebuildMaxPath();
}

void
MaxHeapSet::replaceWorst(const Hypothesis &hyp)
{
    ds_assert(full());
    ds_assert(hyp.cost < worstCost());
    ds_assert(!maxPath_.empty());

    // Hardware (Fig. 8): compare the new cost against every node of the
    // maximum path in parallel. Nodes worse than the new hypothesis
    // shift one level up (the root is discarded); the new hypothesis is
    // placed at the deepest vacated position. Only the index vector
    // moves; entry payloads stay in their slots.
    const std::uint8_t freed_slot = heap_[maxPath_[0]];

    std::size_t depth = 1;
    while (depth < maxPath_.size() &&
           costAtHeap(maxPath_[depth]) > hyp.cost) {
        ++depth;
    }
    // Positions maxPath_[1 .. depth-1] shift up; the new hypothesis goes
    // to position maxPath_[depth - 1] (the root when depth == 1).
    for (std::size_t d = 1; d < depth; ++d)
        heap_[maxPath_[d - 1]] = heap_[maxPath_[d]];
    heap_[maxPath_[depth - 1]] = freed_slot;
    entries_[freed_slot] = hyp;

    rebuildMaxPath();
}

void
MaxHeapSet::collect(std::vector<Hypothesis> &out) const
{
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(entries_[i]);
}

bool
MaxHeapSet::heapValid() const
{
    for (std::size_t pos = 0; pos < heap_.size(); ++pos) {
        const std::size_t left = 2 * pos + 1;
        const std::size_t right = 2 * pos + 2;
        if (left < heap_.size() && costAtHeap(pos) < costAtHeap(left))
            return false;
        if (right < heap_.size() && costAtHeap(pos) < costAtHeap(right))
            return false;
    }
    return true;
}

void
MaxHeapSet::rebuildMaxPath()
{
    maxPath_.clear();
    if (heap_.empty())
        return;
    std::size_t pos = 0;
    maxPath_.push_back(0);
    while (true) {
        const std::size_t left = 2 * pos + 1;
        const std::size_t right = 2 * pos + 2;
        if (left >= heap_.size())
            break;
        std::size_t next = left;
        if (right < heap_.size() && costAtHeap(right) > costAtHeap(left))
            next = right;
        maxPath_.push_back(static_cast<std::uint8_t>(next));
        pos = next;
    }
}

void
MaxHeapSet::siftDown(std::size_t pos)
{
    while (true) {
        const std::size_t left = 2 * pos + 1;
        const std::size_t right = 2 * pos + 2;
        std::size_t largest = pos;
        if (left < heap_.size() &&
            costAtHeap(left) > costAtHeap(largest)) {
            largest = left;
        }
        if (right < heap_.size() &&
            costAtHeap(right) > costAtHeap(largest)) {
            largest = right;
        }
        if (largest == pos)
            return;
        std::swap(heap_[pos], heap_[largest]);
        pos = largest;
    }
}

void
MaxHeapSet::siftUp(std::size_t pos)
{
    while (pos > 0) {
        const std::size_t parent = (pos - 1) / 2;
        if (costAtHeap(parent) >= costAtHeap(pos))
            return;
        std::swap(heap_[pos], heap_[parent]);
        pos = parent;
    }
}

} // namespace darkside
