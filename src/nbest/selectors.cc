#include "nbest/selectors.hh"

#include <algorithm>
#include <unordered_set>

#include "util/bits.hh"

namespace darkside {

UnboundedSelector::UnboundedSelector(std::size_t direct_entries,
                                     std::size_t backup_entries)
    : directEntries_(direct_entries), backupEntries_(backup_entries),
      indexBits_(floorLog2(direct_entries)),
      directOwner_(direct_entries, 0), directValid_(direct_entries, 0),
      backupUsed_(0)
{
    ds_assert(isPowerOfTwo(direct_entries));
}

void
UnboundedSelector::beginFrame()
{
    stats_ = SelectorFrameStats{};
    table_.clear();
    std::fill(directValid_.begin(), directValid_.end(), 0);
    backupUsed_ = 0;
}

void
UnboundedSelector::insert(const Hypothesis &hyp)
{
    ++stats_.insertions;
    auto it = table_.find(hyp.state);
    if (it != table_.end()) {
        ++stats_.recombinations;
        // Charge the region where this hypothesis already lives.
        if (it->second.region == Region::Backup)
            ++stats_.backupAccesses;
        else if (it->second.region == Region::Overflow)
            ++stats_.overflowAccesses;
        if (hyp.cost < it->second.hyp.cost)
            it->second.hyp = hyp;
        return;
    }

    const std::uint32_t idx = xorFoldHash(hyp.state, indexBits_);
    Region region;
    if (!directValid_[idx]) {
        directValid_[idx] = 1;
        directOwner_[idx] = hyp.state;
        region = Region::Direct;
    } else {
        ++stats_.collisions;
        if (backupUsed_ < backupEntries_) {
            ++backupUsed_;
            ++stats_.backupAccesses;
            region = Region::Backup;
        } else {
            ++stats_.overflowAccesses;
            region = Region::Overflow;
        }
    }
    table_.emplace(hyp.state, Slot{hyp, region});
}

std::vector<Hypothesis>
UnboundedSelector::finishFrame()
{
    std::vector<Hypothesis> survivors;
    survivors.reserve(table_.size());
    for (const auto &[state, slot] : table_)
        survivors.push_back(slot.hyp);
    stats_.survivors = survivors.size();
    return survivors;
}

AccurateNBest::AccurateNBest(std::size_t n)
    : n_(n)
{
    ds_assert(n > 0);
}

void
AccurateNBest::beginFrame()
{
    stats_ = SelectorFrameStats{};
    table_.clear();
}

void
AccurateNBest::insert(const Hypothesis &hyp)
{
    ++stats_.insertions;
    auto [it, inserted] = table_.emplace(hyp.state, hyp);
    if (!inserted) {
        ++stats_.recombinations;
        if (hyp.cost < it->second.cost)
            it->second = hyp;
    }
}

std::vector<Hypothesis>
AccurateNBest::finishFrame()
{
    std::vector<Hypothesis> all;
    all.reserve(table_.size());
    for (const auto &[state, hyp] : table_)
        all.push_back(hyp);

    if (all.size() > n_) {
        std::partial_sort(all.begin(),
                          all.begin() + static_cast<std::ptrdiff_t>(n_),
                          all.end(),
                          [](const Hypothesis &a, const Hypothesis &b) {
                              return a.cost < b.cost;
                          });
        stats_.evictions = all.size() - n_;
        all.resize(n_);
    }
    stats_.survivors = all.size();
    return all;
}

DirectMappedHash::DirectMappedHash(std::size_t entries)
    : indexBits_(floorLog2(entries)), slots_(entries),
      valid_(entries, 0)
{
    ds_assert(isPowerOfTwo(entries));
}

void
DirectMappedHash::beginFrame()
{
    stats_ = SelectorFrameStats{};
    std::fill(valid_.begin(), valid_.end(), 0);
}

void
DirectMappedHash::insert(const Hypothesis &hyp)
{
    ++stats_.insertions;
    const std::uint32_t idx = xorFoldHash(hyp.state, indexBits_);
    if (!valid_[idx]) {
        valid_[idx] = 1;
        slots_[idx] = hyp;
        return;
    }
    Hypothesis &cur = slots_[idx];
    if (cur.state == hyp.state) {
        ++stats_.recombinations;
        if (hyp.cost < cur.cost)
            cur = hyp;
        return;
    }
    ++stats_.collisions;
    if (hyp.cost < cur.cost) {
        ++stats_.evictions;
        cur = hyp;
    } else {
        ++stats_.rejections;
    }
}

std::vector<Hypothesis>
DirectMappedHash::finishFrame()
{
    std::vector<Hypothesis> survivors;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (valid_[i])
            survivors.push_back(slots_[i]);
    }
    stats_.survivors = survivors.size();
    return survivors;
}

SetAssociativeHash::SetAssociativeHash(std::size_t entries,
                                       std::size_t ways)
    : ways_(ways)
{
    ds_assert(ways >= 1);
    ds_assert(entries % ways == 0);
    const std::size_t set_count = entries / ways;
    ds_assert(isPowerOfTwo(set_count));
    indexBits_ = floorLog2(set_count);
    sets_.reserve(set_count);
    for (std::size_t i = 0; i < set_count; ++i)
        sets_.emplace_back(ways);
    name_ = std::to_string(ways) + "-way-hash-" +
        std::to_string(entries);
}

void
SetAssociativeHash::beginFrame()
{
    stats_ = SelectorFrameStats{};
    for (auto &set : sets_)
        set.clear();
}

void
SetAssociativeHash::insert(const Hypothesis &hyp)
{
    ++stats_.insertions;
    MaxHeapSet &set = sets_[xorFoldHash(hyp.state, indexBits_)];

    const int slot = set.find(hyp.state);
    if (slot >= 0) {
        ++stats_.recombinations;
        if (hyp.cost < set.entry(static_cast<std::size_t>(slot)).cost)
            set.recombine(slot, hyp);
        return;
    }
    if (!set.full()) {
        set.insert(hyp);
        return;
    }
    if (hyp.cost < set.worstCost()) {
        ++stats_.evictions;
        set.replaceWorst(hyp);
    } else {
        ++stats_.rejections;
    }
}

std::vector<Hypothesis>
SetAssociativeHash::finishFrame()
{
    std::vector<Hypothesis> survivors;
    for (const auto &set : sets_)
        set.collect(survivors);
    stats_.survivors = survivors.size();
    return survivors;
}

double
selectionSimilarity(const std::vector<Hypothesis> &reference,
                    const std::vector<Hypothesis> &loose)
{
    if (reference.empty())
        return 1.0;
    std::unordered_set<StateId> loose_states;
    loose_states.reserve(loose.size());
    for (const auto &h : loose)
        loose_states.insert(h.state);
    std::size_t overlap = 0;
    for (const auto &h : reference)
        overlap += loose_states.count(h.state);
    return static_cast<double>(overlap) /
        static_cast<double>(reference.size());
}

} // namespace darkside
