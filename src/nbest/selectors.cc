#include "nbest/selectors.hh"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "util/bits.hh"

namespace darkside {

UnboundedSelector::UnboundedSelector(std::size_t direct_entries,
                                     std::size_t backup_entries)
    : backupEntries_(backup_entries),
      indexBits_(floorLog2(direct_entries)),
      directEpoch_(direct_entries, 0), epoch_(1), backupUsed_(0),
      replayed_(false)
{
    ds_assert(isPowerOfTwo(direct_entries));
}

void
UnboundedSelector::beginFrame()
{
    stats_ = SelectorFrameStats{};
    map_.clear();
    if (++epoch_ == 0) {
        // Stamp wrap-around: refill once every 65535 frames so a stale
        // stamp can never alias the new epoch.
        std::fill(directEpoch_.begin(), directEpoch_.end(), 0);
        epoch_ = 1;
    }
    backupUsed_ = 0;
    replayed_ = false;
}

/**
 * UNFOLD hardware-model accounting, deferred out of the insert path.
 * Nodes are visited in first-insertion order — the order the online
 * classification saw distinct states — and each node's recombination
 * count (touches) tells how often its region was re-accessed, so the
 * replay produces byte-identical stats to classifying at insert time:
 * a node placed in backup/overflow costs one placement access plus one
 * access per recombination; direct-region traffic is free on-chip.
 */
void
UnboundedSelector::replayStats()
{
    const std::size_t n = map_.size();
    std::uint64_t touch_sum = 0;
    std::uint64_t collisions = 0;
    std::uint64_t backup = 0;
    std::uint64_t overflow = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t idx = xorFoldHash(map_.stateAt(i),
                                              indexBits_);
        const std::uint64_t touches = map_.touchesAt(i);
        touch_sum += touches;
        if (directEpoch_[idx] != epoch_) {
            directEpoch_[idx] = epoch_;
        } else {
            ++collisions;
            if (backupUsed_ < backupEntries_) {
                ++backupUsed_;
                backup += touches + 1;
            } else {
                overflow += touches + 1;
            }
        }
    }
    stats_.insertions = touch_sum + n;
    stats_.recombinations = touch_sum;
    stats_.collisions = collisions;
    stats_.backupAccesses = backup;
    stats_.overflowAccesses = overflow;
}

float
UnboundedSelector::finishFrame(std::vector<Hypothesis> &out)
{
    if (!replayed_) {
        replayStats();
        replayed_ = true;
    }
    out.clear();
    out.reserve(map_.size());
    const float best = map_.collect(out);
    stats_.survivors = out.size();
    return best;
}

AccurateNBest::AccurateNBest(std::size_t n)
    : n_(n)
{
    ds_assert(n > 0);
}

void
AccurateNBest::beginFrame()
{
    stats_ = SelectorFrameStats{};
    table_.clear();
}

void
AccurateNBest::insert(const Hypothesis &hyp)
{
    ++stats_.insertions;
    auto [it, inserted] = table_.emplace(hyp.state, hyp);
    if (!inserted) {
        ++stats_.recombinations;
        if (hyp.cost < it->second.cost)
            it->second = hyp;
    }
}

float
AccurateNBest::finishFrame(std::vector<Hypothesis> &out)
{
    out.clear();
    out.reserve(table_.size());
    for (const auto &[state, hyp] : table_)
        out.push_back(hyp);

    if (out.size() > n_) {
        std::partial_sort(out.begin(),
                          out.begin() + static_cast<std::ptrdiff_t>(n_),
                          out.end(),
                          [](const Hypothesis &a, const Hypothesis &b) {
                              return a.cost < b.cost;
                          });
        stats_.evictions = out.size() - n_;
        out.resize(n_);
    }
    stats_.survivors = out.size();
    float best = std::numeric_limits<float>::infinity();
    for (const auto &h : out)
        best = std::min(best, h.cost);
    return best;
}

DirectMappedHash::DirectMappedHash(std::size_t entries)
    : indexBits_(floorLog2(entries)), slots_(entries),
      valid_(entries, 0)
{
    ds_assert(isPowerOfTwo(entries));
}

void
DirectMappedHash::beginFrame()
{
    stats_ = SelectorFrameStats{};
    std::fill(valid_.begin(), valid_.end(), 0);
}

void
DirectMappedHash::insert(const Hypothesis &hyp)
{
    ++stats_.insertions;
    const std::uint32_t idx = xorFoldHash(hyp.state, indexBits_);
    if (!valid_[idx]) {
        valid_[idx] = 1;
        slots_[idx] = hyp;
        return;
    }
    Hypothesis &cur = slots_[idx];
    if (cur.state == hyp.state) {
        ++stats_.recombinations;
        if (hyp.cost < cur.cost)
            cur = hyp;
        return;
    }
    ++stats_.collisions;
    if (hyp.cost < cur.cost) {
        ++stats_.evictions;
        cur = hyp;
    } else {
        ++stats_.rejections;
    }
}

float
DirectMappedHash::finishFrame(std::vector<Hypothesis> &out)
{
    out.clear();
    float best = std::numeric_limits<float>::infinity();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (valid_[i]) {
            best = std::min(best, slots_[i].cost);
            out.push_back(slots_[i]);
        }
    }
    stats_.survivors = out.size();
    return best;
}

SetAssociativeHash::SetAssociativeHash(std::size_t entries,
                                       std::size_t ways)
    : ways_(ways)
{
    ds_assert(ways >= 1);
    ds_assert(entries % ways == 0);
    const std::size_t set_count = entries / ways;
    ds_assert(isPowerOfTwo(set_count));
    indexBits_ = floorLog2(set_count);
    sets_.reserve(set_count);
    for (std::size_t i = 0; i < set_count; ++i)
        sets_.emplace_back(ways);
    name_ = std::to_string(ways) + "-way-hash-" +
        std::to_string(entries);
}

void
SetAssociativeHash::beginFrame()
{
    stats_ = SelectorFrameStats{};
    for (auto &set : sets_)
        set.clear();
}

void
SetAssociativeHash::insert(const Hypothesis &hyp)
{
    ++stats_.insertions;
    MaxHeapSet &set = sets_[xorFoldHash(hyp.state, indexBits_)];

    const int slot = set.find(hyp.state);
    if (slot >= 0) {
        ++stats_.recombinations;
        if (hyp.cost < set.entry(static_cast<std::size_t>(slot)).cost)
            set.recombine(slot, hyp);
        return;
    }
    if (!set.full()) {
        set.insert(hyp);
        return;
    }
    if (hyp.cost < set.worstCost()) {
        ++stats_.evictions;
        set.replaceWorst(hyp);
    } else {
        ++stats_.rejections;
    }
}

float
SetAssociativeHash::finishFrame(std::vector<Hypothesis> &out)
{
    out.clear();
    for (const auto &set : sets_)
        set.collect(out);
    stats_.survivors = out.size();
    float best = std::numeric_limits<float>::infinity();
    for (const auto &h : out)
        best = std::min(best, h.cost);
    return best;
}

double
selectionSimilarity(const std::vector<Hypothesis> &reference,
                    const std::vector<Hypothesis> &loose)
{
    if (reference.empty())
        return 1.0;
    std::unordered_set<StateId> loose_states;
    loose_states.reserve(loose.size());
    for (const auto &h : loose)
        loose_states.insert(h.state);
    std::size_t overlap = 0;
    for (const auto &h : reference)
        overlap += loose_states.count(h.state);
    return static_cast<double>(overlap) /
        static_cast<double>(reference.size());
}

} // namespace darkside
