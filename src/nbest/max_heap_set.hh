/**
 * @file
 * The Max-Heap replacement structure of one hash set (Fig. 8 of the
 * paper). A set holds up to K hypotheses. The heap is maintained through
 * an *index vector* (3-bit indices in hardware): entries never move, only
 * the indices are reordered. A replacement removes the root (the worst
 * hypothesis) and inserts the new one along the pre-computed
 * *maximum path* — the root-to-leaf path of maximum-cost successors —
 * so that in hardware all comparisons happen in parallel and the whole
 * operation completes in a single cycle.
 */

#ifndef DARKSIDE_NBEST_MAX_HEAP_SET_HH
#define DARKSIDE_NBEST_MAX_HEAP_SET_HH

#include <cstdint>
#include <vector>

#include "nbest/hypothesis.hh"

namespace darkside {

/**
 * One K-entry set with Max-Heap eviction metadata.
 */
class MaxHeapSet
{
  public:
    /** @param ways set capacity K (the hash associativity). */
    explicit MaxHeapSet(std::size_t ways);

    std::size_t capacity() const { return entries_.size(); }
    std::size_t size() const { return size_; }
    bool full() const { return size_ == capacity(); }

    /** Clear the set (new frame). */
    void clear();

    /**
     * Entry slot holding `state`, or -1. Hardware compares all K tags in
     * parallel; this is the recombination lookup.
     */
    int find(StateId state) const;

    /** Entry at physical slot i (valid for i < size()). */
    const Hypothesis &entry(std::size_t i) const;

    /** Cost of the worst (root) hypothesis; requires a non-empty set. */
    float worstCost() const;

    /** Append into a non-full set, restoring the heap. */
    void insert(const Hypothesis &hyp);

    /**
     * Lower the cost of slot `slot` to `hyp.cost` (recombination with a
     * better path). Requires hyp.cost <= current cost.
     */
    void recombine(int slot, const Hypothesis &hyp);

    /**
     * Replace the root (worst) hypothesis with `hyp`, which must be
     * better than worstCost(). Implements the maximum-path insertion of
     * Fig. 8.
     */
    void replaceWorst(const Hypothesis &hyp);

    /** Copy out the live hypotheses. */
    void collect(std::vector<Hypothesis> &out) const;

    /** Verify the heap invariant (test hook). @return true when valid. */
    bool heapValid() const;

    /** Heap-order slot index at heap position i (test hook). */
    std::uint8_t heapIndex(std::size_t i) const { return heap_.at(i); }

  private:
    /** Re-derive the maximum path after a structural change. */
    void rebuildMaxPath();

    /** Sift the heap node at heap position `pos` down. */
    void siftDown(std::size_t pos);

    /** Sift the heap node at heap position `pos` up. */
    void siftUp(std::size_t pos);

    float costAtHeap(std::size_t pos) const;

    std::vector<Hypothesis> entries_;
    /** Heap position -> entry slot ("Max-Heap Index-Vector"). */
    std::vector<std::uint8_t> heap_;
    /** Heap positions of the maximum path, root first ("Maximum-path"). */
    std::vector<std::uint8_t> maxPath_;
    std::size_t size_;
};

} // namespace darkside

#endif // DARKSIDE_NBEST_MAX_HEAP_SET_HH
