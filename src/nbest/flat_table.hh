/**
 * @file
 * Flat node-pool hash map for the decode hot path. Replaces the
 * UnboundedSelector's std::unordered_map<StateId, Slot> with three
 * contiguous arrays (chain links, payloads, bucket heads), removing
 * the per-insert node allocation and the pointer-chasing of the
 * std::unordered_map clear()/iterate cycle the profile was dominated
 * by.
 *
 * Survivor enumeration order is load-bearing: it decides float-tie
 * winners in the decoder and, via the next frame's generation order,
 * the UNFOLD region statistics. The seed's order is libstdc++'s
 * iteration order, so this table replicates it exactly:
 *
 *  - one global singly-linked node list; a bucket's entries are a
 *    contiguous run of it, and the bucket array stores the node
 *    *before* the run (libstdc++'s _M_before_begin trick, here as the
 *    kBeforeBegin sentinel);
 *  - a new key is linked at the head of its bucket's run; an insert
 *    into an empty bucket pushes the node at the global list head and
 *    repoints the displaced head's bucket;
 *  - bucket growth delegates to std::__detail::_Prime_rehash_policy —
 *    the exact object std::unordered_map uses — and rehash walks the
 *    global list in iteration order, reinserting with the same rule.
 *
 * With identity hashing of StateId (what std::hash<uint32_t> is on
 * libstdc++), enumeration is byte-for-byte the order the seed
 * produced. On non-libstdc++ standard libraries a portable fallback
 * policy with the same prime sequence keeps the table correct and
 * deterministic, though not bit-identical to a std::unordered_map
 * seed build there (which would differ from libstdc++ anyway).
 */

#ifndef DARKSIDE_NBEST_FLAT_TABLE_HH
#define DARKSIDE_NBEST_FLAT_TABLE_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#ifdef __GLIBCXX__
// For std::__detail::_Prime_rehash_policy (exported, stable ABI): the
// exact growth schedule std::unordered_map uses.
#include <unordered_map>
#else
#include <cstddef>
#include <utility>
#endif

#include "nbest/hypothesis.hh"

namespace darkside {

#ifndef __GLIBCXX__
/**
 * Fallback growth policy mirroring _Prime_rehash_policy's interface:
 * grow to the next prime above 2x when the load factor would exceed 1.
 */
struct FlatRehashPolicy
{
    std::size_t _M_next_resize = 0;

    static std::size_t
    _M_next_bkt(std::size_t n)
    {
        static const std::size_t primes[] = {
            13,        29,        59,        127,       257,
            541,       1109,      2357,      5087,      10273,
            20753,     42043,     85229,     172933,    351061,
            712697,    1447153,   2938679,   5967347,   12117689,
            24607243,  49969847,  101473717, 206062531};
        for (std::size_t p : primes) {
            if (p >= n)
                return p;
        }
        return primes[sizeof(primes) / sizeof(primes[0]) - 1];
    }

    std::pair<bool, std::size_t>
    _M_need_rehash(std::size_t buckets, std::size_t elements,
                   std::size_t inserting)
    {
        if (elements + inserting <= _M_next_resize)
            return {false, 0};
        const std::size_t next = _M_next_bkt(
            std::max<std::size_t>(elements + inserting, 2 * buckets));
        _M_next_resize = next;
        return {next != buckets, next};
    }
};
#endif

/**
 * StateId -> (cost, trace) map with min-cost recombination, touch
 * counting for the UNFOLD stats replay, and libstdc++-identical
 * enumeration order. One instance is reused across frames; clear()
 * keeps the bucket array (like std::unordered_map::clear()), so
 * steady-state frames allocate nothing.
 */
class FlatHypothesisMap
{
  public:
    struct Key
    {
        /** Next node on the global list (kNull terminates). */
        std::uint32_t next;
        /** Cached bucket of `state` (revalidated on rehash). */
        std::uint32_t bkt;
        StateId state;
    };

    struct Val
    {
        float cost;
        std::uint32_t trace;
        /** Recombinations that hit this node this frame. */
        std::uint32_t touches;
    };

    static constexpr std::uint32_t kNull = 0xFFFFFFFFu;
    /** "Before-begin" marker: the run starts at the global head. */
    static constexpr std::uint32_t kBeforeBegin = 0xFFFFFFFEu;

    FlatHypothesisMap() : buckets_(1, kNull) {}

    /** Reset for a new frame; bucket array and growth state persist. */
    void
    clear()
    {
        keys_.clear();
        vals_.clear();
        std::fill(buckets_.begin(), buckets_.end(), kNull);
        head_ = kNull;
    }

    /** Offer one hypothesis, recombining same-state by minimum cost. */
    inline void
    insert(const Hypothesis &hyp)
    {
        const std::uint32_t bkt = bucketOf(hyp.state);
        const std::uint32_t before = buckets_[bkt];
        if (before != kNull) {
            // Walk this bucket's run of the global list.
            for (std::uint32_t n = nextOf(before); n != kNull;) {
                const Key &k = keys_[n];
                if (k.state == hyp.state) {
                    Val &v = vals_[n];
                    ++v.touches;
                    if (hyp.cost < v.cost) {
                        v.cost = hyp.cost;
                        v.trace = hyp.trace;
                    }
                    return;
                }
                const std::uint32_t nx = k.next;
                if (nx == kNull || keys_[nx].bkt != bkt)
                    break;
                n = nx;
            }
        }
        insertNew(hyp, bkt);
    }

    std::size_t size() const { return keys_.size(); }

    /** Node access in insertion order (the stats-replay order). */
    StateId stateAt(std::size_t i) const { return keys_[i].state; }
    std::uint32_t touchesAt(std::size_t i) const
    {
        return vals_[i].touches;
    }

    /**
     * Append the entries to `out` in enumeration (iteration) order;
     * @return the minimum cost (+inf when empty).
     */
    float
    collect(std::vector<Hypothesis> &out) const
    {
        float best = std::numeric_limits<float>::infinity();
        for (std::uint32_t p = head_; p != kNull; p = keys_[p].next) {
            const float c = vals_[p].cost;
            best = std::min(best, c);
            out.push_back({keys_[p].state, c, vals_[p].trace});
        }
        return best;
    }

  private:
    static std::uint64_t
    computeMagic(std::uint64_t divisor)
    {
        return ~std::uint64_t{0} / divisor + 1;
    }

    /**
     * state % bucketCount_ via Lemire's fastmod (one multiply-high
     * instead of a hardware divide per insert).
     */
    inline std::uint32_t
    bucketOf(StateId state) const
    {
        if (bucketCount_ == 1)
            return 0;
        const std::uint64_t low = magic_ * state;
        return static_cast<std::uint32_t>(
            (static_cast<unsigned __int128>(low) * bucketCount_) >> 64);
    }

    inline std::uint32_t
    nextOf(std::uint32_t before) const
    {
        return before == kBeforeBegin ? head_ : keys_[before].next;
    }

    inline void
    setNextOf(std::uint32_t before, std::uint32_t value)
    {
        if (before == kBeforeBegin)
            head_ = value;
        else
            keys_[before].next = value;
    }

    void
    insertNew(const Hypothesis &hyp, std::uint32_t bkt)
    {
        // Same growth schedule as std::unordered_map: consult the
        // policy only when the element count crosses its cached
        // next-resize mark.
        if (__builtin_expect(keys_.size() + 1 > policy_._M_next_resize,
                             0)) {
            const auto need =
                policy_._M_need_rehash(bucketCount_, keys_.size(), 1);
            if (need.first) {
                rehash(need.second);
                bkt = bucketOf(hyp.state);
            }
        }
        const auto node = static_cast<std::uint32_t>(keys_.size());
        keys_.push_back({kNull, bkt, hyp.state});
        linkAtBucketHead(bkt, node);
        vals_.push_back({hyp.cost, hyp.trace, 0});
    }

    /** libstdc++ _M_insert_bucket_begin: new node heads its bucket's
     *  run; an empty bucket's run starts at the global list head. */
    void
    linkAtBucketHead(std::uint32_t bkt, std::uint32_t node)
    {
        if (buckets_[bkt] != kNull) {
            keys_[node].next = nextOf(buckets_[bkt]);
            setNextOf(buckets_[bkt], node);
        } else {
            keys_[node].next = head_;
            head_ = node;
            if (keys_[node].next != kNull)
                buckets_[keys_[keys_[node].next].bkt] = node;
            buckets_[bkt] = kBeforeBegin;
        }
    }

    /** libstdc++ _M_rehash_aux: walk the global list in iteration
     *  order, relinking each node under the new bucket count. */
    void
    rehash(std::size_t new_count)
    {
        buckets_.assign(new_count, kNull);
        bucketCount_ = new_count;
        magic_ = computeMagic(new_count);
        std::uint32_t p = head_;
        head_ = kNull;
        std::uint32_t bbegin_bkt = 0;
        while (p != kNull) {
            const std::uint32_t next = keys_[p].next;
            const std::uint32_t bkt = bucketOf(keys_[p].state);
            keys_[p].bkt = bkt;
            if (buckets_[bkt] == kNull) {
                keys_[p].next = head_;
                head_ = p;
                buckets_[bkt] = kBeforeBegin;
                if (keys_[p].next != kNull)
                    buckets_[bbegin_bkt] = p;
                bbegin_bkt = bkt;
            } else {
                keys_[p].next = nextOf(buckets_[bkt]);
                setNextOf(buckets_[bkt], p);
            }
            p = next;
        }
    }

    std::vector<Key> keys_;
    std::vector<Val> vals_;
    /** Per bucket: the node *before* its run (kNull = empty bucket). */
    std::vector<std::uint32_t> buckets_;
    std::uint64_t bucketCount_ = 1;
    std::uint64_t magic_ = 0;
    std::uint32_t head_ = kNull;
#ifdef __GLIBCXX__
    std::__detail::_Prime_rehash_policy policy_;
#else
    FlatRehashPolicy policy_;
#endif
};

} // namespace darkside

#endif // DARKSIDE_NBEST_FLAT_TABLE_HH
