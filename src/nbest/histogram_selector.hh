/**
 * @file
 * Histogram pruning ("max-active"), the classic software technique for
 * bounding the number of live hypotheses (used by Kaldi's decoders).
 * Instead of sorting, it builds a coarse histogram of hypothesis costs
 * and finds the cost threshold whose cumulative count reaches N.
 *
 * This is the natural middle ground between the paper's two baselines:
 * cheaper than an accurate partial sort, more accurate than a lossy
 * hash — but it needs a second pass over the frame's hypotheses (the
 * histogram is only complete when the frame ends), which is exactly
 * what the paper's single-pass Max-Heap hash avoids in hardware. The
 * ablation bench quantifies where each approach lands.
 */

#ifndef DARKSIDE_NBEST_HISTOGRAM_SELECTOR_HH
#define DARKSIDE_NBEST_HISTOGRAM_SELECTOR_HH

#include <unordered_map>
#include <vector>

#include "nbest/hypothesis.hh"

namespace darkside {

/**
 * Max-active selection via cost histograms.
 */
class HistogramPruning : public HypothesisSelector
{
  public:
    /**
     * @param max_active hypothesis budget N per frame
     * @param buckets histogram resolution (coarser -> cheaper, looser)
     * @param cost_range histogram span above the frame-best cost;
     *        hypotheses beyond it are counted in the last bucket
     */
    explicit HistogramPruning(std::size_t max_active,
                              std::size_t buckets = 64,
                              float cost_range = 20.0f);

    void beginFrame() override;
    void insert(const Hypothesis &hyp) override;
    float finishFrame(std::vector<Hypothesis> &out) override;
    using HypothesisSelector::finishFrame;
    const char *name() const override { return "histogram-pruning"; }

    std::size_t maxActive() const { return maxActive_; }

    /**
     * The cost threshold selected for the last finished frame (its
     * effective adaptive beam); +inf when no pruning was needed.
     */
    float lastThreshold() const { return lastThreshold_; }

  private:
    std::size_t maxActive_;
    std::size_t buckets_;
    float costRange_;
    std::unordered_map<StateId, Hypothesis> table_;
    float bestCost_;
    float lastThreshold_;
};

} // namespace darkside

#endif // DARKSIDE_NBEST_HISTOGRAM_SELECTOR_HH
