/**
 * @file
 * Adaptive frame-level pruning selectors — the software answer to the
 * paper's hypothesis explosion (ROADMAP item 2). Both slot into the
 * finishFrame selector seam and are `final`, so the decoder's
 * devirtualized kernel binds them statically in the batch and the
 * streaming arm alike.
 *
 *  - RelativeThresholdSelector: FLToP-style frame-level relative
 *    threshold pruning (arXiv 2510.09085). Every frame keeps exactly
 *    the hypotheses within a fixed log-space margin of the frame-best
 *    cost — a relative probability factor of exp(-margin) — with a
 *    survivors/frame cap as the hard bound, so one flat frame cannot
 *    explode the workload no matter what the threshold passes.
 *
 *  - AdaptiveBeamSelector: derives its per-frame margin from the
 *    entropy of the frame's score distribution, EMA-smoothed across
 *    frames. High entropy (a flat distribution — the dark-side
 *    condition the paper measures under aggressive pruning) *narrows*
 *    the margin to contain the hypothesis explosion; a confident,
 *    peaked frame relaxes back toward the wide margin where keeping
 *    alternatives is cheap. The margin moves inside configurable
 *    [min, max] bounds.
 *
 * Both emit the closed `decode.selector.*` telemetry namespace (see
 * docs/METRICS.md): the per-frame margin trajectory, survivors/frame,
 * the entropy signal, and threshold/cap hit counters. All of it is
 * deterministic — per-utterance-serial integer counts plus raw-double
 * histogram observations (bucket counts and exact min/max only).
 */

#ifndef DARKSIDE_NBEST_ADAPTIVE_SELECTORS_HH
#define DARKSIDE_NBEST_ADAPTIVE_SELECTORS_HH

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "nbest/hypothesis.hh"

namespace darkside {

/**
 * FLToP-style frame-level relative-threshold pruning with a hard
 * survivors/frame cap.
 */
class RelativeThresholdSelector final : public HypothesisSelector
{
  public:
    /**
     * @param margin log-space threshold above the frame-best cost;
     *        a hypothesis survives iff cost <= best + margin
     * @param max_survivors hard survivors/frame cap (best-cost order)
     */
    RelativeThresholdSelector(float margin, std::size_t max_survivors);

    void beginFrame() override;
    void insert(const Hypothesis &hyp) override;
    float finishFrame(std::vector<Hypothesis> &out) override;
    using HypothesisSelector::finishFrame;
    const char *name() const override { return "relative-threshold"; }

    float margin() const { return margin_; }
    std::size_t maxSurvivors() const { return maxSurvivors_; }

  private:
    float margin_;
    std::size_t maxSurvivors_;
    std::unordered_map<StateId, Hypothesis> table_;
    float bestCost_;
    /** Guards the per-frame telemetry publication so repeated
     *  finishFrame() calls on the same frame publish once. */
    bool closed_;
};

/**
 * Entropy-adaptive beam: the selection margin widens/narrows per frame
 * from the EMA-smoothed normalized entropy of the frame's recombined
 * score distribution.
 */
class AdaptiveBeamSelector final : public HypothesisSelector
{
  public:
    /**
     * @param min_margin margin under maximum entropy (flattest frames)
     * @param max_margin margin under zero entropy (confident frames)
     * @param ema_alpha weight of the current frame's entropy in the
     *        exponential moving average (1 = no smoothing)
     */
    AdaptiveBeamSelector(float min_margin, float max_margin,
                         float ema_alpha = 0.3f);

    void startUtterance() override;
    void beginFrame() override;
    void insert(const Hypothesis &hyp) override;
    float finishFrame(std::vector<Hypothesis> &out) override;
    using HypothesisSelector::finishFrame;
    const char *name() const override { return "adaptive-beam"; }

    float minMargin() const { return minMargin_; }
    float maxMargin() const { return maxMargin_; }

    /** Margin applied to the last finished frame. */
    float currentMargin() const { return margin_; }

    /** EMA-smoothed normalized entropy after the last finished frame
     *  (0 = fully confident, 1 = uniform). */
    double smoothedEntropy() const { return entropyEma_; }

  private:
    float minMargin_;
    float maxMargin_;
    float emaAlpha_;
    std::unordered_map<StateId, Hypothesis> table_;
    float bestCost_;
    float margin_;
    double entropyEma_;
    bool haveEma_;
    /** Guards the EMA update + telemetry so repeated finishFrame()
     *  calls on the same frame apply the signal once. */
    bool closed_;
};

} // namespace darkside

#endif // DARKSIDE_NBEST_ADAPTIVE_SELECTORS_HH
