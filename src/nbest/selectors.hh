/**
 * @file
 * Concrete hypothesis selectors:
 *
 *  - UnboundedSelector: functional behaviour of the UNFOLD baseline —
 *    every hypothesis survives (subject only to the decoder's beam), but
 *    accesses are classified into direct-mapped region / backup buffer /
 *    DRAM overflow so the cycle model can charge them (Sec. III-A).
 *  - AccurateNBest: keeps exactly the N best hypotheses per frame using
 *    a partial sort (the expensive "N-Best Accurate" comparison point).
 *  - DirectMappedHash: one hypothesis per entry; a collision keeps the
 *    cheaper path (the paper's direct-mapped line in Fig. 7).
 *  - SetAssociativeHash: the paper's proposal — K-way sets with Max-Heap
 *    replacement, loosely tracking the N best (N = entries).
 */

#ifndef DARKSIDE_NBEST_SELECTORS_HH
#define DARKSIDE_NBEST_SELECTORS_HH

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "nbest/flat_table.hh"
#include "nbest/hypothesis.hh"
#include "nbest/max_heap_set.hh"

namespace darkside {

/**
 * Baseline: keep everything, account hash-region traffic.
 *
 * The storage is a FlatHypothesisMap (same recombination semantics and
 * enumeration order as the seed's std::unordered_map, flat layout);
 * the UNFOLD region classification — which direct-mapped entry a state
 * would land in, and whether it spills to the backup buffer or DRAM —
 * is replayed over the nodes in insertion order when the frame closes,
 * instead of being interleaved with every insert. The replay visits
 * distinct states in first-insertion order with per-node touch counts,
 * which is exactly the information the online classification consumed,
 * so the stats are byte-identical to the seed's.
 *
 * `final` so the decoder's devirtualized fast path can bind these
 * methods statically.
 */
class UnboundedSelector final : public HypothesisSelector
{
  public:
    /**
     * @param direct_entries direct-mapped hash entries (UNFOLD: 32K)
     * @param backup_entries on-chip backup-buffer entries (UNFOLD: 16K)
     */
    explicit UnboundedSelector(std::size_t direct_entries = 32768,
                               std::size_t backup_entries = 16384);

    void beginFrame() override;

    void
    insert(const Hypothesis &hyp) override
    {
        map_.insert(hyp);
    }

    float finishFrame(std::vector<Hypothesis> &out) override;
    using HypothesisSelector::finishFrame;
    const char *name() const override { return "unbounded"; }

  private:
    void replayStats();

    std::size_t backupEntries_;
    unsigned indexBits_;
    /** Epoch-stamped direct-mapped occupancy: an entry is taken this
     *  frame iff its stamp equals epoch_. Replaces a per-frame memset
     *  of the whole (32K-entry) array with one counter bump. */
    std::vector<std::uint16_t> directEpoch_;
    std::uint16_t epoch_;
    FlatHypothesisMap map_;
    std::size_t backupUsed_;
    /** Guards the stats replay so repeated finishFrame() calls on the
     *  same frame don't reclassify (the seed's stats were insert-time
     *  and thus naturally idempotent at frame close). */
    bool replayed_;
};

/**
 * Exact N-best selection via partial sort.
 */
class AccurateNBest : public HypothesisSelector
{
  public:
    explicit AccurateNBest(std::size_t n);

    void beginFrame() override;
    void insert(const Hypothesis &hyp) override;
    float finishFrame(std::vector<Hypothesis> &out) override;
    using HypothesisSelector::finishFrame;
    const char *name() const override { return "n-best-accurate"; }

    std::size_t n() const { return n_; }

  private:
    std::size_t n_;
    std::unordered_map<StateId, Hypothesis> table_;
};

/**
 * Direct-mapped bounded hash (associativity 1).
 */
class DirectMappedHash : public HypothesisSelector
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit DirectMappedHash(std::size_t entries);

    void beginFrame() override;
    void insert(const Hypothesis &hyp) override;
    float finishFrame(std::vector<Hypothesis> &out) override;
    using HypothesisSelector::finishFrame;
    const char *name() const override { return "direct-mapped-hash"; }

  private:
    unsigned indexBits_;
    std::vector<Hypothesis> slots_;
    std::vector<std::uint8_t> valid_;
};

/**
 * The proposed K-way set-associative hash with Max-Heap replacement.
 */
class SetAssociativeHash : public HypothesisSelector
{
  public:
    /**
     * @param entries total capacity N (paper: 1024); power of two
     * @param ways set associativity K (paper: 8); must divide entries
     */
    SetAssociativeHash(std::size_t entries, std::size_t ways);

    void beginFrame() override;
    void insert(const Hypothesis &hyp) override;
    float finishFrame(std::vector<Hypothesis> &out) override;
    using HypothesisSelector::finishFrame;
    const char *name() const override { return name_.c_str(); }

    std::size_t entries() const { return sets_.size() * ways_; }
    std::size_t ways() const { return ways_; }

  private:
    std::size_t ways_;
    unsigned indexBits_;
    std::vector<MaxHeapSet> sets_;
    std::string name_;
};

/**
 * Fraction of `reference` hypotheses (by state id) also present in
 * `loose` — the similarity metric of Fig. 9.
 */
double selectionSimilarity(const std::vector<Hypothesis> &reference,
                           const std::vector<Hypothesis> &loose);

} // namespace darkside

#endif // DARKSIDE_NBEST_SELECTORS_HH
