/**
 * @file
 * Hypothesis record and the selector interface shared by the Viterbi
 * decoder and the accelerator models. A selector receives every
 * hypothesis generated in a frame (in generation order, as the hardware
 * would) and decides which survive into the next frame, recombining
 * same-state hypotheses by minimum cost on the way.
 */

#ifndef DARKSIDE_NBEST_HYPOTHESIS_HH
#define DARKSIDE_NBEST_HYPOTHESIS_HH

#include <cstdint>
#include <vector>

#include "wfst/wfst.hh"

namespace darkside {

/** A partial path (token) ending in a WFST state. */
struct Hypothesis
{
    /** WFST state this partial path ends in (the recombination key). */
    StateId state = 0;
    /** Accumulated cost (positive -log likelihood); lower is better. */
    float cost = 0.0f;
    /** Opaque backtrace handle owned by the decoder. */
    std::uint32_t trace = 0;
};

/** Per-frame activity counters of a selector (feeds the cycle model). */
struct SelectorFrameStats
{
    /** Hypotheses offered to the selector this frame. */
    std::uint64_t insertions = 0;
    /** Insertions that merged with an existing same-state hypothesis. */
    std::uint64_t recombinations = 0;
    /** Insertions whose direct-mapped entry was taken by another state. */
    std::uint64_t collisions = 0;
    /** Accesses serviced by the backup buffer (UNFOLD baseline). */
    std::uint64_t backupAccesses = 0;
    /** Accesses spilled to the DRAM overflow buffer (UNFOLD baseline). */
    std::uint64_t overflowAccesses = 0;
    /** Stored hypotheses displaced by better-cost arrivals. */
    std::uint64_t evictions = 0;
    /** New arrivals discarded because they were worse than a full set. */
    std::uint64_t rejections = 0;
    /** Hypotheses alive at the end of the frame. */
    std::uint64_t survivors = 0;

    void
    merge(const SelectorFrameStats &o)
    {
        insertions += o.insertions;
        recombinations += o.recombinations;
        collisions += o.collisions;
        backupAccesses += o.backupAccesses;
        overflowAccesses += o.overflowAccesses;
        evictions += o.evictions;
        rejections += o.rejections;
        survivors += o.survivors;
    }
};

/**
 * Frame-by-frame hypothesis filter.
 */
class HypothesisSelector
{
  public:
    virtual ~HypothesisSelector() = default;

    /**
     * Reset cross-frame state for a new utterance. Most selectors are
     * stateless between frames and keep the default no-op; selectors
     * that smooth a signal across frames (AdaptiveBeamSelector's
     * entropy EMA) reset it here so a reused selector decodes every
     * utterance identically regardless of what it decoded before.
     * Both decode arms (batch and streaming) call this exactly once
     * before the first frame.
     */
    virtual void startUtterance() {}

    /** Reset for a new frame (clears storage, zeroes frame counters). */
    virtual void beginFrame() = 0;

    /** Offer one generated hypothesis. */
    virtual void insert(const Hypothesis &hyp) = 0;

    /**
     * Close the frame, writing the survivors (unspecified order) into
     * the caller-provided buffer — the decoder reuses one buffer
     * across frames, so a selector must not assume `out` is fresh
     * beyond it being clear()ed here.
     *
     * @return the minimum survivor cost (+inf when none survive), so
     *         the decoder's next beam bound needs no second scan
     */
    virtual float finishFrame(std::vector<Hypothesis> &out) = 0;

    /**
     * Allocating convenience wrapper (tests, oracle tees). Derived
     * classes re-expose it with `using HypothesisSelector::finishFrame`
     * next to their buffered override.
     */
    std::vector<Hypothesis>
    finishFrame()
    {
        std::vector<Hypothesis> out;
        finishFrame(out);
        return out;
    }

    /** Counters of the frame closed by the last finishFrame(). */
    const SelectorFrameStats &frameStats() const { return stats_; }

    /** Short identifier for reports ("unbounded", "8-way-hash", ...). */
    virtual const char *name() const = 0;

  protected:
    SelectorFrameStats stats_;
};

} // namespace darkside

#endif // DARKSIDE_NBEST_HYPOTHESIS_HH
