/**
 * @file
 * metrics_check — schema validator for darkside-metrics-v1 JSON files
 * (the --metrics output of the CLI and the benches). CI runs it over
 * freshly produced snapshots so an exporter regression fails the build
 * rather than silently producing unreadable artefacts.
 *
 * Checks, per file:
 *   - parses as JSON; top level is an object with schema/counters/
 *     gauges/histograms and nothing else
 *   - "schema" equals "darkside-metrics-v1"
 *   - each section is an array sorted by strictly increasing "name"
 *   - counters: non-negative integer "value", string unit, bool flag
 *   - histograms: lo < hi, min <= max when count > 0, and
 *     count == underflow + overflow + sum(buckets)
 *   - fault.* namespace (when present): the four outcome counters
 *     exist with the right units, every fault.injected.<probe> names
 *     a registered probe with the registry's determinism flag, and
 *     fault.injected equals the sum over deterministic probes
 *   - store.* namespace (when present): the five artifact-store
 *     outcome counters exist with the right units and are
 *     deterministic (docs/STORE.md)
 *   - decode.trace.* namespace (when present): the trace-arena
 *     counters exist with the right units, are deterministic, and
 *     collected <= allocated (docs/METRICS.md)
 *   - dnn.kernel.* namespace (when present): the four kernel-layer
 *     counters exist with the right units, are deterministic, and no
 *     unknown dnn.kernel.* name appears (docs/METRICS.md)
 *   - dnn.cache.* namespace (when present): the five score-cache
 *     counters exist with the right units, are flagged
 *     non-deterministic, no unknown dnn.cache.* name appears, and the
 *     ledger balances: hit + miss == lookup, insert <= miss, and
 *     evict <= insert (docs/METRICS.md)
 *   - serve.* namespace (when present): the session/chunk counter
 *     family and latency histograms exist with the right units and
 *     determinism flags, no unknown serve.* name appears, and the
 *     admission identities hold: admitted + shed == offered and
 *     completed + degraded == admitted (docs/SERVING.md)
 *
 * With --expect-faults, a file whose fault.injected.* total is zero
 * (or absent) fails — CI uses this to prove a fault plan actually
 * fired.
 *
 * With --diff, two snapshots are compared instead of validated: every
 * deterministic counter and histogram, and every gauge, must match
 * exactly after dropping metrics whose name starts with an --ignore
 * prefix. CI uses this to prove a killed-and-resumed sweep reproduced
 * an uninterrupted run's aggregates bit-identically.
 *
 * usage: metrics_check [--expect-faults] <file.json> [more.json ...]
 *        metrics_check --diff <a.json> <b.json> [--ignore p1,p2,...]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "telemetry/snapshot.hh"
#include "util/json.hh"

using darkside::JsonValue;

namespace {

int failures = 0;
const char *current_file = "";

void
fail(const std::string &what)
{
    std::fprintf(stderr, "%s: %s\n", current_file, what.c_str());
    ++failures;
}

/** Non-empty string member `key`. */
bool
checkString(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.member(key);
    if (!v || !v->isString()) {
        fail(std::string("missing string member '") + key + "'");
        return false;
    }
    return true;
}

bool
checkBool(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.member(key);
    if (!v || !v->isBool()) {
        fail(std::string("missing bool member '") + key + "'");
        return false;
    }
    return true;
}

bool
checkNumber(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.member(key);
    if (!v || !v->isNumber()) {
        fail(std::string("missing numeric member '") + key + "'");
        return false;
    }
    return true;
}

bool
checkUint(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.member(key);
    if (!v || !v->isNonNegativeInteger()) {
        fail(std::string("member '") + key +
             "' is not a non-negative integer");
        return false;
    }
    return true;
}

/** The array section `key`, sorted by strictly increasing name. */
const std::vector<JsonValue> *
section(const JsonValue &root, const char *key)
{
    const JsonValue *v = root.member(key);
    if (!v || !v->isArray()) {
        fail(std::string("missing array section '") + key + "'");
        return nullptr;
    }
    std::string prev;
    for (std::size_t i = 0; i < v->asArray().size(); ++i) {
        const JsonValue &entry = v->asArray()[i];
        if (!entry.isObject() || !entry.member("name") ||
            !entry.member("name")->isString()) {
            fail(std::string(key) + "[" + std::to_string(i) +
                 "]: entry without a string 'name'");
            return nullptr;
        }
        const std::string &name = entry.member("name")->asString();
        if (i > 0 && name <= prev) {
            fail(std::string(key) + ": names not sorted/unique at '" +
                 name + "'");
        }
        prev = name;
    }
    return &v->asArray();
}

void
checkCounters(const JsonValue &root)
{
    const auto *entries = section(root, "counters");
    if (!entries)
        return;
    for (const JsonValue &c : *entries) {
        checkString(c, "unit");
        checkBool(c, "deterministic");
        checkUint(c, "value");
    }
}

void
checkGauges(const JsonValue &root)
{
    const auto *entries = section(root, "gauges");
    if (!entries)
        return;
    for (const JsonValue &g : *entries) {
        checkString(g, "unit");
        checkNumber(g, "value");
    }
}

void
checkHistograms(const JsonValue &root)
{
    const auto *entries = section(root, "histograms");
    if (!entries)
        return;
    for (const JsonValue &h : *entries) {
        const std::string name = h.member("name")->asString();
        checkString(h, "unit");
        checkBool(h, "deterministic");
        if (!checkNumber(h, "lo") || !checkNumber(h, "hi") ||
            !checkNumber(h, "min") || !checkNumber(h, "max") ||
            !checkUint(h, "count") || !checkUint(h, "underflow") ||
            !checkUint(h, "overflow")) {
            continue;
        }
        if (!(h.member("lo")->asNumber() < h.member("hi")->asNumber()))
            fail(name + ": lo must be < hi");

        const JsonValue *buckets = h.member("buckets");
        if (!buckets || !buckets->isArray() ||
            buckets->asArray().empty()) {
            fail(name + ": missing non-empty 'buckets' array");
            continue;
        }
        double total = h.member("underflow")->asNumber() +
            h.member("overflow")->asNumber();
        bool buckets_ok = true;
        for (const JsonValue &b : buckets->asArray()) {
            if (!b.isNonNegativeInteger()) {
                fail(name + ": bucket is not a non-negative integer");
                buckets_ok = false;
                break;
            }
            total += b.asNumber();
        }
        if (buckets_ok && total != h.member("count")->asNumber())
            fail(name + ": count != underflow + overflow + sum(buckets)");
        if (h.member("count")->asNumber() > 0 &&
            h.member("min")->asNumber() > h.member("max")->asNumber()) {
            fail(name + ": min > max with samples present");
        }
    }
}

void
checkFaultNamespace(const JsonValue &root, bool expect_faults)
{
    const JsonValue *counters = root.member("counters");
    if (!counters || !counters->isArray())
        return; // section() already reported this

    std::map<std::string, const JsonValue *> fault;
    for (const JsonValue &c : counters->asArray()) {
        const JsonValue *name = c.member("name");
        if (name && name->isString() &&
            name->asString().rfind("fault.", 0) == 0)
            fault[name->asString()] = &c;
    }
    if (fault.empty()) {
        if (expect_faults)
            fail("--expect-faults: no fault.* counters present");
        return;
    }

    const struct
    {
        const char *name;
        const char *unit;
    } required[] = {
        {"fault.injected", "faults"},
        {"fault.retried", "attempts"},
        {"fault.recovered", "operations"},
        {"fault.degraded", "utterances"},
    };
    for (const auto &r : required) {
        auto it = fault.find(r.name);
        if (it == fault.end()) {
            fail(std::string("fault.* present but '") + r.name +
                 "' is missing");
            continue;
        }
        const JsonValue &c = *it->second;
        const JsonValue *unit = c.member("unit");
        if (unit && unit->isString() && unit->asString() != r.unit) {
            fail(std::string(r.name) + ": unit '" + unit->asString() +
                 "' != '" + r.unit + "'");
        }
        const JsonValue *det = c.member("deterministic");
        if (det && det->isBool() && !det->asBool())
            fail(std::string(r.name) + ": must be deterministic");
    }

    const std::string prefix = "fault.injected.";
    double deterministic_sum = 0.0;
    double total = 0.0;
    bool sum_valid = true;
    for (const auto &[name, c] : fault) {
        if (name.rfind(prefix, 0) != 0)
            continue;
        const std::string probe_name = name.substr(prefix.size());
        const darkside::ProbePoint *probe =
            darkside::findProbe(probe_name);
        if (!probe) {
            fail(name + ": '" + probe_name +
                 "' is not a registered probe point");
            sum_valid = false;
            continue;
        }
        const JsonValue *det = c->member("deterministic");
        if (det && det->isBool() &&
            det->asBool() != probe->deterministic) {
            fail(name + ": determinism flag disagrees with the probe "
                        "registry");
        }
        const JsonValue *value = c->member("value");
        if (!value || !value->isNonNegativeInteger()) {
            sum_valid = false;
            continue;
        }
        total += value->asNumber();
        if (probe->deterministic)
            deterministic_sum += value->asNumber();
    }
    auto injected = fault.find("fault.injected");
    if (sum_valid && injected != fault.end()) {
        const JsonValue *value = injected->second->member("value");
        if (value && value->isNonNegativeInteger() &&
            value->asNumber() != deterministic_sum) {
            fail("fault.injected != sum of fault.injected.<probe> "
                 "over deterministic probes");
        }
    }
    if (expect_faults && total == 0.0)
        fail("--expect-faults: no faults were injected");
}

/**
 * store.* namespace: when any store counter is present the whole
 * outcome family must be, with the documented units, and all of them
 * deterministic (the store counts artifacts, not races).
 */
void
checkStoreNamespace(const JsonValue &root)
{
    const JsonValue *counters = root.member("counters");
    if (!counters || !counters->isArray())
        return; // section() already reported this

    std::map<std::string, const JsonValue *> store;
    for (const JsonValue &c : counters->asArray()) {
        const JsonValue *name = c.member("name");
        if (name && name->isString() &&
            name->asString().rfind("store.", 0) == 0)
            store[name->asString()] = &c;
    }
    if (store.empty())
        return;

    const struct
    {
        const char *name;
        const char *unit;
    } required[] = {
        {"store.writes", "artifacts"},
        {"store.write_failures", "artifacts"},
        {"store.verified_reads", "artifacts"},
        {"store.quarantined", "artifacts"},
        {"store.resumed_units", "units"},
    };
    for (const auto &r : required) {
        auto it = store.find(r.name);
        if (it == store.end()) {
            fail(std::string("store.* present but '") + r.name +
                 "' is missing");
            continue;
        }
        const JsonValue &c = *it->second;
        const JsonValue *unit = c.member("unit");
        if (unit && unit->isString() && unit->asString() != r.unit) {
            fail(std::string(r.name) + ": unit '" + unit->asString() +
                 "' != '" + r.unit + "'");
        }
        const JsonValue *det = c.member("deterministic");
        if (det && det->isBool() && !det->asBool())
            fail(std::string(r.name) + ": must be deterministic");
    }
}

/**
 * decode.trace.* namespace: when any trace counter is present the
 * whole family must be, with the documented units, all deterministic
 * (trace accounting is per-utterance-serial integer counts), and
 * collected nodes can never exceed allocated nodes. The peak_live
 * histogram, when present, must carry the "nodes" unit and be
 * deterministic too.
 */
void
checkDecodeTraceNamespace(const JsonValue &root)
{
    const JsonValue *counters = root.member("counters");
    if (!counters || !counters->isArray())
        return; // section() already reported this

    std::map<std::string, const JsonValue *> trace;
    for (const JsonValue &c : counters->asArray()) {
        const JsonValue *name = c.member("name");
        if (name && name->isString() &&
            name->asString().rfind("decode.trace.", 0) == 0)
            trace[name->asString()] = &c;
    }
    if (trace.empty())
        return;

    const struct
    {
        const char *name;
        const char *unit;
    } required[] = {
        {"decode.trace.allocated", "nodes"},
        {"decode.trace.collected", "nodes"},
        {"decode.trace.gc_runs", "collections"},
    };
    for (const auto &r : required) {
        auto it = trace.find(r.name);
        if (it == trace.end()) {
            fail(std::string("decode.trace.* present but '") + r.name +
                 "' is missing");
            continue;
        }
        const JsonValue &c = *it->second;
        const JsonValue *unit = c.member("unit");
        if (unit && unit->isString() && unit->asString() != r.unit) {
            fail(std::string(r.name) + ": unit '" + unit->asString() +
                 "' != '" + r.unit + "'");
        }
        const JsonValue *det = c.member("deterministic");
        if (det && det->isBool() && !det->asBool())
            fail(std::string(r.name) + ": must be deterministic");
    }

    const auto counterValue =
        [&](const char *name, double &out) -> bool {
        auto it = trace.find(name);
        if (it == trace.end())
            return false;
        const JsonValue *value = it->second->member("value");
        if (!value || !value->isNonNegativeInteger())
            return false;
        out = value->asNumber();
        return true;
    };
    double allocated = 0.0, collected = 0.0;
    if (counterValue("decode.trace.allocated", allocated) &&
        counterValue("decode.trace.collected", collected) &&
        collected > allocated) {
        fail("decode.trace.collected exceeds decode.trace.allocated");
    }

    const JsonValue *histograms = root.member("histograms");
    if (!histograms || !histograms->isArray())
        return;
    for (const JsonValue &h : histograms->asArray()) {
        const JsonValue *name = h.member("name");
        if (!name || !name->isString() ||
            name->asString() != "decode.trace.peak_live")
            continue;
        const JsonValue *unit = h.member("unit");
        if (unit && unit->isString() && unit->asString() != "nodes") {
            fail("decode.trace.peak_live: unit '" + unit->asString() +
                 "' != 'nodes'");
        }
        const JsonValue *det = h.member("deterministic");
        if (det && det->isBool() && !det->asBool())
            fail("decode.trace.peak_live: must be deterministic");
    }
}

/**
 * dnn.kernel.* namespace: when any kernel counter is present the whole
 * family must be, with the documented units, all deterministic (the
 * dispatcher counts calls and shape-derived work items, never races),
 * and the namespace is closed — an unknown dnn.kernel.* name is a
 * telemetry regression, not an extension point.
 */
void
checkDnnKernelNamespace(const JsonValue &root)
{
    const JsonValue *counters = root.member("counters");
    if (!counters || !counters->isArray())
        return; // section() already reported this

    std::map<std::string, const JsonValue *> kernel;
    for (const JsonValue &c : counters->asArray()) {
        const JsonValue *name = c.member("name");
        if (name && name->isString() &&
            name->asString().rfind("dnn.kernel.", 0) == 0)
            kernel[name->asString()] = &c;
    }
    if (kernel.empty())
        return;

    const struct
    {
        const char *name;
        const char *unit;
    } required[] = {
        {"dnn.kernel.dispatch.scalar", "calls"},
        {"dnn.kernel.dispatch.avx2", "calls"},
        {"dnn.kernel.dense_blocks", "blocks"},
        {"dnn.kernel.spmv_rows", "rows"},
    };
    for (const auto &r : required) {
        auto it = kernel.find(r.name);
        if (it == kernel.end()) {
            fail(std::string("dnn.kernel.* present but '") + r.name +
                 "' is missing");
            continue;
        }
        const JsonValue &c = *it->second;
        const JsonValue *unit = c.member("unit");
        if (unit && unit->isString() && unit->asString() != r.unit) {
            fail(std::string(r.name) + ": unit '" + unit->asString() +
                 "' != '" + r.unit + "'");
        }
        const JsonValue *det = c.member("deterministic");
        if (det && det->isBool() && !det->asBool())
            fail(std::string(r.name) + ": must be deterministic");
    }
    for (const auto &[name, c] : kernel) {
        bool known = false;
        for (const auto &r : required)
            known |= name == r.name;
        if (!known)
            fail(name + ": unknown dnn.kernel.* counter");
    }
}

/**
 * decode.selector.* namespace: the frame-adaptive selectors register
 * their whole telemetry family at once (counters and histograms), so
 * when any member is present every member must be, with the documented
 * units, all deterministic (per-utterance-serial integer counts and
 * raw-value histogram observations). The namespace is closed — an
 * unknown decode.selector.* name is a telemetry regression, not an
 * extension point.
 */
void
checkDecodeSelectorNamespace(const JsonValue &root)
{
    const JsonValue *counters = root.member("counters");
    if (!counters || !counters->isArray())
        return; // section() already reported this

    std::map<std::string, const JsonValue *> selector;
    for (const JsonValue &c : counters->asArray()) {
        const JsonValue *name = c.member("name");
        if (name && name->isString() &&
            name->asString().rfind("decode.selector.", 0) == 0)
            selector[name->asString()] = &c;
    }

    std::map<std::string, const JsonValue *> selector_hists;
    const JsonValue *histograms = root.member("histograms");
    if (histograms && histograms->isArray()) {
        for (const JsonValue &h : histograms->asArray()) {
            const JsonValue *name = h.member("name");
            if (name && name->isString() &&
                name->asString().rfind("decode.selector.", 0) == 0)
                selector_hists[name->asString()] = &h;
        }
    }
    if (selector.empty() && selector_hists.empty())
        return;

    const struct
    {
        const char *name;
        const char *unit;
    } required[] = {
        {"decode.selector.frames", "frames"},
        {"decode.selector.threshold_hits", "hypotheses"},
        {"decode.selector.cap_hits", "hypotheses"},
    };
    for (const auto &r : required) {
        auto it = selector.find(r.name);
        if (it == selector.end()) {
            fail(std::string("decode.selector.* present but '") +
                 r.name + "' is missing");
            continue;
        }
        const JsonValue &c = *it->second;
        const JsonValue *unit = c.member("unit");
        if (unit && unit->isString() && unit->asString() != r.unit) {
            fail(std::string(r.name) + ": unit '" + unit->asString() +
                 "' != '" + r.unit + "'");
        }
        const JsonValue *det = c.member("deterministic");
        if (det && det->isBool() && !det->asBool())
            fail(std::string(r.name) + ": must be deterministic");
    }
    for (const auto &[name, c] : selector) {
        bool known = false;
        for (const auto &r : required)
            known |= name == r.name;
        if (!known)
            fail(name + ": unknown decode.selector.* counter");
    }

    const struct
    {
        const char *name;
        const char *unit;
    } required_hists[] = {
        {"decode.selector.beam_width", "logcost"},
        {"decode.selector.survivors", "hypotheses"},
        {"decode.selector.entropy", "ratio"},
    };
    for (const auto &r : required_hists) {
        auto it = selector_hists.find(r.name);
        if (it == selector_hists.end()) {
            fail(std::string("decode.selector.* present but histogram "
                             "'") +
                 r.name + "' is missing");
            continue;
        }
        const JsonValue &h = *it->second;
        const JsonValue *unit = h.member("unit");
        if (unit && unit->isString() && unit->asString() != r.unit) {
            fail(std::string(r.name) + ": unit '" + unit->asString() +
                 "' != '" + r.unit + "'");
        }
        const JsonValue *det = h.member("deterministic");
        if (det && det->isBool() && !det->asBool())
            fail(std::string(r.name) + ": must be deterministic");
    }
    for (const auto &[name, h] : selector_hists) {
        bool known = false;
        for (const auto &r : required_hists)
            known |= name == r.name;
        if (!known)
            fail(name + ": unknown decode.selector.* histogram");
    }
}

/**
 * dnn.cache.* namespace: the sharded acoustic-score cache registers
 * its whole counter family at once, so when any member is present
 * every member must be, with the documented units, all flagged
 * non-deterministic (shards race under concurrent sessions, and two
 * threads may miss on the same key where one thread would hit).
 * The namespace is closed, and the ledger must balance: every lookup
 * lands as exactly one hit or miss, entries are only inserted after a
 * miss, and only inserted entries can be evicted.
 */
void
checkDnnCacheNamespace(const JsonValue &root)
{
    const JsonValue *counters = root.member("counters");
    if (!counters || !counters->isArray())
        return; // section() already reported this

    std::map<std::string, const JsonValue *> cache;
    for (const JsonValue &c : counters->asArray()) {
        const JsonValue *name = c.member("name");
        if (name && name->isString() &&
            name->asString().rfind("dnn.cache.", 0) == 0)
            cache[name->asString()] = &c;
    }
    if (cache.empty())
        return;

    const struct
    {
        const char *name;
        const char *unit;
    } required[] = {
        {"dnn.cache.lookup", "lookups"},
        {"dnn.cache.hit", "lookups"},
        {"dnn.cache.miss", "lookups"},
        {"dnn.cache.insert", "entries"},
        {"dnn.cache.evict", "entries"},
    };
    for (const auto &r : required) {
        auto it = cache.find(r.name);
        if (it == cache.end()) {
            fail(std::string("dnn.cache.* present but '") + r.name +
                 "' is missing");
            continue;
        }
        const JsonValue &c = *it->second;
        const JsonValue *unit = c.member("unit");
        if (unit && unit->isString() && unit->asString() != r.unit) {
            fail(std::string(r.name) + ": unit '" + unit->asString() +
                 "' != '" + r.unit + "'");
        }
        const JsonValue *det = c.member("deterministic");
        if (det && det->isBool() && det->asBool())
            fail(std::string(r.name) + ": must be non-deterministic");
    }
    for (const auto &[name, c] : cache) {
        bool known = false;
        for (const auto &r : required)
            known |= name == r.name;
        if (!known)
            fail(name + ": unknown dnn.cache.* counter");
    }

    const auto counterValue =
        [&](const char *name, double &out) -> bool {
        auto it = cache.find(name);
        if (it == cache.end())
            return false;
        const JsonValue *value = it->second->member("value");
        if (!value || !value->isNonNegativeInteger())
            return false;
        out = value->asNumber();
        return true;
    };
    double lookup = 0.0, hit = 0.0, miss = 0.0;
    double insert = 0.0, evict = 0.0;
    if (counterValue("dnn.cache.lookup", lookup) &&
        counterValue("dnn.cache.hit", hit) &&
        counterValue("dnn.cache.miss", miss) && hit + miss != lookup)
        fail("dnn.cache.hit + dnn.cache.miss != dnn.cache.lookup");
    if (counterValue("dnn.cache.miss", miss) &&
        counterValue("dnn.cache.insert", insert) && insert > miss)
        fail("dnn.cache.insert > dnn.cache.miss");
    if (counterValue("dnn.cache.insert", insert) &&
        counterValue("dnn.cache.evict", evict) && evict > insert)
        fail("dnn.cache.evict > dnn.cache.insert");
}

/**
 * serve.* namespace: when any serve metric is present the whole
 * counter family and the latency histograms must be, with the
 * documented units. Only serve.sessions.offered (it restates the
 * seeded workload) and the serve.drain.* journal counters (they
 * restate durable store state, like store.*) are deterministic;
 * everything else is timing-dependent under concurrent sessions and
 * must say so, which keeps serve runs out of deterministic snapshot
 * diffs. The namespace is closed, and the admission ledger must
 * balance: every offered session was either admitted or shed (with
 * the shed causes summing to the shed count), and every admitted
 * session either completed or degraded. The chunk-latency histogram
 * must have recorded exactly one sample per chunk.
 */
void
checkServeNamespace(const JsonValue &root)
{
    const JsonValue *counters = root.member("counters");
    if (!counters || !counters->isArray())
        return; // section() already reported this

    std::map<std::string, const JsonValue *> serve;
    for (const JsonValue &c : counters->asArray()) {
        const JsonValue *name = c.member("name");
        if (name && name->isString() &&
            name->asString().rfind("serve.", 0) == 0)
            serve[name->asString()] = &c;
    }

    const struct
    {
        const char *name;
        const char *unit;
        bool deterministic;
    } required[] = {
        {"serve.sessions.offered", "sessions", true},
        {"serve.sessions.admitted", "sessions", false},
        {"serve.sessions.shed", "sessions", false},
        {"serve.sessions.completed", "sessions", false},
        {"serve.sessions.degraded", "sessions", false},
        {"serve.chunks", "chunks", false},
        {"serve.frames", "frames", false},
        {"serve.shed.queue", "sessions", false},
        {"serve.shed.deadline", "sessions", false},
        {"serve.shed.length", "sessions", false},
        {"serve.shed.breaker", "sessions", false},
        {"serve.shed.injected", "sessions", false},
        {"serve.breaker.trips", "trips", false},
        {"serve.breaker.half_opens", "probes", false},
        {"serve.drain.requested", "drains", true},
        {"serve.drain.refused", "sessions", true},
        {"serve.drain.committed_units", "units", true},
        {"serve.drain.resumed_sessions", "sessions", true},
    };

    // The namespace also spans gauges and histograms; any serve.*
    // name in any section activates the whole-family requirement.
    bool present = !serve.empty();
    const struct
    {
        const char *name;
        const char *unit;
    } known_gauges[] = {
        {"serve.chunk_p50_us", "us"},
        {"serve.chunk_p95_us", "us"},
        {"serve.chunk_p99_us", "us"},
        {"serve.sessions_per_sec", "sessions/s"},
        {"serve.ttfp_p50_us", "us"},
        {"serve.ttfp_p95_us", "us"},
    };
    const JsonValue *gauges = root.member("gauges");
    if (gauges && gauges->isArray()) {
        for (const JsonValue &g : gauges->asArray()) {
            const JsonValue *name = g.member("name");
            if (!name || !name->isString() ||
                name->asString().rfind("serve.", 0) != 0)
                continue;
            present = true;
            bool known = false;
            for (const auto &k : known_gauges) {
                if (name->asString() != k.name)
                    continue;
                known = true;
                const JsonValue *unit = g.member("unit");
                if (unit && unit->isString() &&
                    unit->asString() != k.unit) {
                    fail(name->asString() + ": unit '" +
                         unit->asString() + "' != '" + k.unit + "'");
                }
            }
            if (!known)
                fail(name->asString() + ": unknown serve.* gauge");
        }
    }

    std::map<std::string, const JsonValue *> serve_hists;
    const JsonValue *histograms = root.member("histograms");
    if (histograms && histograms->isArray()) {
        for (const JsonValue &h : histograms->asArray()) {
            const JsonValue *name = h.member("name");
            if (name && name->isString() &&
                name->asString().rfind("serve.", 0) == 0)
                serve_hists[name->asString()] = &h;
        }
    }
    present |= !serve_hists.empty();
    if (!present)
        return;

    for (const auto &r : required) {
        auto it = serve.find(r.name);
        if (it == serve.end()) {
            fail(std::string("serve.* present but '") + r.name +
                 "' is missing");
            continue;
        }
        const JsonValue &c = *it->second;
        const JsonValue *unit = c.member("unit");
        if (unit && unit->isString() && unit->asString() != r.unit) {
            fail(std::string(r.name) + ": unit '" + unit->asString() +
                 "' != '" + r.unit + "'");
        }
        const JsonValue *det = c.member("deterministic");
        if (det && det->isBool() && det->asBool() != r.deterministic) {
            fail(std::string(r.name) + ": must be " +
                 (r.deterministic ? "deterministic"
                                  : "non-deterministic"));
        }
    }
    for (const auto &[name, c] : serve) {
        bool known = false;
        for (const auto &r : required)
            known |= name == r.name;
        if (!known)
            fail(name + ": unknown serve.* counter");
    }

    const struct
    {
        const char *name;
    } required_hists[] = {
        {"serve.chunk_latency_us"},
        {"serve.session_latency_us"},
        {"serve.ttfp_us"},
    };
    for (const auto &r : required_hists) {
        auto it = serve_hists.find(r.name);
        if (it == serve_hists.end()) {
            fail(std::string("serve.* present but histogram '") +
                 r.name + "' is missing");
            continue;
        }
        const JsonValue &h = *it->second;
        const JsonValue *unit = h.member("unit");
        if (unit && unit->isString() && unit->asString() != "us") {
            fail(std::string(r.name) + ": unit '" + unit->asString() +
                 "' != 'us'");
        }
        const JsonValue *det = h.member("deterministic");
        if (det && det->isBool() && det->asBool())
            fail(std::string(r.name) + ": must be non-deterministic");
    }
    for (const auto &[name, h] : serve_hists) {
        bool known = false;
        for (const auto &r : required_hists)
            known |= name == r.name;
        if (!known)
            fail(name + ": unknown serve.* histogram");
    }

    const auto counterValue =
        [&](const char *name, double &out) -> bool {
        auto it = serve.find(name);
        if (it == serve.end())
            return false;
        const JsonValue *value = it->second->member("value");
        if (!value || !value->isNonNegativeInteger())
            return false;
        out = value->asNumber();
        return true;
    };
    double offered = 0.0, admitted = 0.0, shed = 0.0;
    double completed = 0.0, degraded = 0.0, chunks = 0.0;
    if (counterValue("serve.sessions.offered", offered) &&
        counterValue("serve.sessions.admitted", admitted) &&
        counterValue("serve.sessions.shed", shed) &&
        admitted + shed != offered) {
        fail("serve.sessions.admitted + serve.sessions.shed != "
             "serve.sessions.offered");
    }
    if (counterValue("serve.sessions.admitted", admitted) &&
        counterValue("serve.sessions.completed", completed) &&
        counterValue("serve.sessions.degraded", degraded) &&
        completed + degraded != admitted) {
        fail("serve.sessions.completed + serve.sessions.degraded != "
             "serve.sessions.admitted");
    }
    double shed_queue = 0.0, shed_deadline = 0.0, shed_length = 0.0;
    double shed_breaker = 0.0, shed_injected = 0.0;
    double drain_refused = 0.0;
    if (counterValue("serve.sessions.shed", shed) &&
        counterValue("serve.shed.queue", shed_queue) &&
        counterValue("serve.shed.deadline", shed_deadline) &&
        counterValue("serve.shed.length", shed_length) &&
        counterValue("serve.shed.breaker", shed_breaker) &&
        counterValue("serve.shed.injected", shed_injected) &&
        counterValue("serve.drain.refused", drain_refused) &&
        shed_queue + shed_deadline + shed_length + shed_breaker +
                shed_injected + drain_refused !=
            shed) {
        fail("serve.shed.* + serve.drain.refused != "
             "serve.sessions.shed");
    }
    auto chunk_hist = serve_hists.find("serve.chunk_latency_us");
    if (counterValue("serve.chunks", chunks) &&
        chunk_hist != serve_hists.end()) {
        const JsonValue *count = chunk_hist->second->member("count");
        if (count && count->isNonNegativeInteger() &&
            count->asNumber() != chunks) {
            fail("serve.chunk_latency_us count != serve.chunks");
        }
    }
}

void
checkFile(const char *path, bool expect_faults)
{
    current_file = path;
    std::ifstream is(path);
    if (!is) {
        fail("cannot open");
        return;
    }
    std::ostringstream buf;
    buf << is.rdbuf();

    std::string error;
    const JsonValue root = JsonValue::parse(buf.str(), &error);
    if (!error.empty()) {
        fail("parse error: " + error);
        return;
    }
    if (!root.isObject()) {
        fail("top level is not an object");
        return;
    }
    const JsonValue *schema = root.member("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != "darkside-metrics-v1") {
        fail("schema is not \"darkside-metrics-v1\"");
        return;
    }
    for (const auto &[key, value] : root.asObject()) {
        if (key != "schema" && key != "counters" && key != "gauges" &&
            key != "histograms") {
            fail("unexpected top-level member '" + key + "'");
        }
    }
    checkCounters(root);
    checkGauges(root);
    checkHistograms(root);
    checkFaultNamespace(root, expect_faults);
    checkStoreNamespace(root);
    checkDecodeTraceNamespace(root);
    checkDnnKernelNamespace(root);
    checkDnnCacheNamespace(root);
    checkDecodeSelectorNamespace(root);
    checkServeNamespace(root);
}

// --- --diff mode --------------------------------------------------------

bool
loadSnapshot(const char *path,
             const std::vector<std::string> &ignore,
             darkside::telemetry::Snapshot &out,
             darkside::telemetry::Snapshot *raw = nullptr)
{
    current_file = path;
    std::ifstream is(path);
    if (!is) {
        fail("cannot open");
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    auto parsed = darkside::telemetry::Snapshot::parseJson(buf.str());
    if (!parsed.isOk()) {
        fail(parsed.message());
        return false;
    }
    // Deterministic metrics and gauges are the reproducibility
    // contract; non-deterministic ones (wall time, cache races) are
    // expected to differ between any two runs.
    if (raw)
        *raw = parsed.value();
    out = parsed.take().deterministic().withoutPrefixes(ignore);
    return true;
}

int
diffSnapshots(const char *path_a, const char *path_b,
              const std::vector<std::string> &ignore,
              const std::vector<std::string> &require)
{
    namespace dt = darkside::telemetry;
    dt::Snapshot a, b, raw_a, raw_b;
    if (!loadSnapshot(path_a, ignore, a, &raw_a) ||
        !loadSnapshot(path_b, ignore, b, &raw_b))
        return 1;
    current_file = path_b;

    const auto note = [&](const std::string &what) {
        fail(std::string("differs from ") + path_a + ": " + what);
    };

    // --require: counters matching these prefixes must match exactly
    // even when flagged non-deterministic — the resume acceptance uses
    // it for the serve session ledger, which replay reproduces
    // bit-identically although concurrency makes it nondet-flagged.
    // Compared on the raw snapshots, before the deterministic filter.
    if (!require.empty()) {
        const auto wanted = [&](const std::string &name) {
            for (const auto &p : require) {
                if (name.rfind(p, 0) == 0)
                    return true;
            }
            return false;
        };
        std::map<std::string, std::uint64_t> ra;
        for (const auto &c : raw_a.counters)
            if (wanted(c.name))
                ra[c.name] = c.value;
        std::size_t compared = 0;
        for (const auto &c : raw_b.counters) {
            if (!wanted(c.name))
                continue;
            auto it = ra.find(c.name);
            if (it == ra.end()) {
                note("required counter '" + c.name +
                     "' only in second file");
                continue;
            }
            if (it->second != c.value) {
                note("required counter '" + c.name + "': " +
                     std::to_string(it->second) + " != " +
                     std::to_string(c.value));
            }
            ra.erase(it);
            ++compared;
        }
        for (const auto &[name, v] : ra)
            note("required counter '" + name + "' only in first file");
        if (compared == 0)
            note("no counter matched any --require prefix");
    }

    std::map<std::string, const dt::CounterSample *> ca;
    for (const auto &c : a.counters)
        ca[c.name] = &c;
    for (const auto &c : b.counters) {
        auto it = ca.find(c.name);
        if (it == ca.end()) {
            note("counter '" + c.name + "' only in second file");
            continue;
        }
        if (it->second->value != c.value) {
            note("counter '" + c.name + "': " +
                 std::to_string(it->second->value) + " != " +
                 std::to_string(c.value));
        }
        ca.erase(it);
    }
    for (const auto &[name, c] : ca)
        note("counter '" + name + "' only in first file");

    std::map<std::string, const dt::GaugeSample *> ga;
    for (const auto &g : a.gauges)
        ga[g.name] = &g;
    for (const auto &g : b.gauges) {
        auto it = ga.find(g.name);
        if (it == ga.end()) {
            note("gauge '" + g.name + "' only in second file");
            continue;
        }
        if (it->second->value != g.value) {
            note("gauge '" + g.name + "': " +
                 std::to_string(it->second->value) + " != " +
                 std::to_string(g.value));
        }
        ga.erase(it);
    }
    for (const auto &[name, g] : ga)
        note("gauge '" + name + "' only in first file");

    std::map<std::string, const dt::HistogramSample *> ha;
    for (const auto &h : a.histograms)
        ha[h.name] = &h;
    for (const auto &h : b.histograms) {
        auto it = ha.find(h.name);
        if (it == ha.end()) {
            note("histogram '" + h.name + "' only in second file");
            continue;
        }
        const dt::HistogramSample &o = *it->second;
        if (o.count != h.count || o.underflow != h.underflow ||
            o.overflow != h.overflow || o.buckets != h.buckets ||
            o.min != h.min || o.max != h.max) {
            note("histogram '" + h.name + "' differs");
        }
        ha.erase(it);
    }
    for (const auto &[name, h] : ha)
        note("histogram '" + name + "' only in first file");

    if (failures > 0) {
        std::fprintf(stderr, "%d difference(s) found\n", failures);
        return 1;
    }
    std::printf("snapshots match (%zu counters, %zu gauges, "
                "%zu histograms compared)\n",
                b.counters.size(), b.gauges.size(),
                b.histograms.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--diff") == 0) {
        const auto split = [](const char *arg,
                              std::vector<std::string> &out) {
            std::string prefixes = arg;
            std::size_t start = 0;
            while (start <= prefixes.size()) {
                const std::size_t comma = prefixes.find(',', start);
                const std::string p = prefixes.substr(
                    start, comma == std::string::npos
                               ? std::string::npos
                               : comma - start);
                if (!p.empty())
                    out.push_back(p);
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
        };
        std::vector<std::string> ignore, require;
        bool usage_ok = argc >= 4;
        for (int i = 4; i < argc; i += 2) {
            if (i + 1 < argc && std::strcmp(argv[i], "--ignore") == 0)
                split(argv[i + 1], ignore);
            else if (i + 1 < argc &&
                     std::strcmp(argv[i], "--require") == 0)
                split(argv[i + 1], require);
            else
                usage_ok = false;
        }
        if (!usage_ok) {
            std::fprintf(stderr,
                         "usage: metrics_check --diff <a.json> "
                         "<b.json> [--ignore p1,p2,...] "
                         "[--require p1,p2,...]\n");
            return 2;
        }
        return diffSnapshots(argv[2], argv[3], ignore, require);
    }

    bool expect_faults = false;
    int first_file = 1;
    if (first_file < argc &&
        std::strcmp(argv[first_file], "--expect-faults") == 0) {
        expect_faults = true;
        ++first_file;
    }
    if (first_file >= argc) {
        std::fprintf(stderr,
                     "usage: metrics_check [--expect-faults] "
                     "<file.json> [...]\n"
                     "       metrics_check --diff <a.json> <b.json> "
                     "[--ignore p1,p2,...] [--require p1,p2,...]\n");
        return 2;
    }
    for (int i = first_file; i < argc; ++i)
        checkFile(argv[i], expect_faults);
    if (failures > 0) {
        std::fprintf(stderr, "%d problem(s) found\n", failures);
        return 1;
    }
    std::printf("%d file(s) OK\n", argc - first_file);
    return 0;
}
