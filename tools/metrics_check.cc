/**
 * @file
 * metrics_check — schema validator for darkside-metrics-v1 JSON files
 * (the --metrics output of the CLI and the benches). CI runs it over
 * freshly produced snapshots so an exporter regression fails the build
 * rather than silently producing unreadable artefacts.
 *
 * Checks, per file:
 *   - parses as JSON; top level is an object with schema/counters/
 *     gauges/histograms and nothing else
 *   - "schema" equals "darkside-metrics-v1"
 *   - each section is an array sorted by strictly increasing "name"
 *   - counters: non-negative integer "value", string unit, bool flag
 *   - histograms: lo < hi, min <= max when count > 0, and
 *     count == underflow + overflow + sum(buckets)
 *   - fault.* namespace (when present): the four outcome counters
 *     exist with the right units, every fault.injected.<probe> names
 *     a registered probe with the registry's determinism flag, and
 *     fault.injected equals the sum over deterministic probes
 *
 * With --expect-faults, a file whose fault.injected.* total is zero
 * (or absent) fails — CI uses this to prove a fault plan actually
 * fired.
 *
 * usage: metrics_check [--expect-faults] <file.json> [more.json ...]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "util/json.hh"

using darkside::JsonValue;

namespace {

int failures = 0;
const char *current_file = "";

void
fail(const std::string &what)
{
    std::fprintf(stderr, "%s: %s\n", current_file, what.c_str());
    ++failures;
}

/** Non-empty string member `key`. */
bool
checkString(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.member(key);
    if (!v || !v->isString()) {
        fail(std::string("missing string member '") + key + "'");
        return false;
    }
    return true;
}

bool
checkBool(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.member(key);
    if (!v || !v->isBool()) {
        fail(std::string("missing bool member '") + key + "'");
        return false;
    }
    return true;
}

bool
checkNumber(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.member(key);
    if (!v || !v->isNumber()) {
        fail(std::string("missing numeric member '") + key + "'");
        return false;
    }
    return true;
}

bool
checkUint(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.member(key);
    if (!v || !v->isNonNegativeInteger()) {
        fail(std::string("member '") + key +
             "' is not a non-negative integer");
        return false;
    }
    return true;
}

/** The array section `key`, sorted by strictly increasing name. */
const std::vector<JsonValue> *
section(const JsonValue &root, const char *key)
{
    const JsonValue *v = root.member(key);
    if (!v || !v->isArray()) {
        fail(std::string("missing array section '") + key + "'");
        return nullptr;
    }
    std::string prev;
    for (std::size_t i = 0; i < v->asArray().size(); ++i) {
        const JsonValue &entry = v->asArray()[i];
        if (!entry.isObject() || !entry.member("name") ||
            !entry.member("name")->isString()) {
            fail(std::string(key) + "[" + std::to_string(i) +
                 "]: entry without a string 'name'");
            return nullptr;
        }
        const std::string &name = entry.member("name")->asString();
        if (i > 0 && name <= prev) {
            fail(std::string(key) + ": names not sorted/unique at '" +
                 name + "'");
        }
        prev = name;
    }
    return &v->asArray();
}

void
checkCounters(const JsonValue &root)
{
    const auto *entries = section(root, "counters");
    if (!entries)
        return;
    for (const JsonValue &c : *entries) {
        checkString(c, "unit");
        checkBool(c, "deterministic");
        checkUint(c, "value");
    }
}

void
checkGauges(const JsonValue &root)
{
    const auto *entries = section(root, "gauges");
    if (!entries)
        return;
    for (const JsonValue &g : *entries) {
        checkString(g, "unit");
        checkNumber(g, "value");
    }
}

void
checkHistograms(const JsonValue &root)
{
    const auto *entries = section(root, "histograms");
    if (!entries)
        return;
    for (const JsonValue &h : *entries) {
        const std::string name = h.member("name")->asString();
        checkString(h, "unit");
        checkBool(h, "deterministic");
        if (!checkNumber(h, "lo") || !checkNumber(h, "hi") ||
            !checkNumber(h, "min") || !checkNumber(h, "max") ||
            !checkUint(h, "count") || !checkUint(h, "underflow") ||
            !checkUint(h, "overflow")) {
            continue;
        }
        if (!(h.member("lo")->asNumber() < h.member("hi")->asNumber()))
            fail(name + ": lo must be < hi");

        const JsonValue *buckets = h.member("buckets");
        if (!buckets || !buckets->isArray() ||
            buckets->asArray().empty()) {
            fail(name + ": missing non-empty 'buckets' array");
            continue;
        }
        double total = h.member("underflow")->asNumber() +
            h.member("overflow")->asNumber();
        bool buckets_ok = true;
        for (const JsonValue &b : buckets->asArray()) {
            if (!b.isNonNegativeInteger()) {
                fail(name + ": bucket is not a non-negative integer");
                buckets_ok = false;
                break;
            }
            total += b.asNumber();
        }
        if (buckets_ok && total != h.member("count")->asNumber())
            fail(name + ": count != underflow + overflow + sum(buckets)");
        if (h.member("count")->asNumber() > 0 &&
            h.member("min")->asNumber() > h.member("max")->asNumber()) {
            fail(name + ": min > max with samples present");
        }
    }
}

void
checkFaultNamespace(const JsonValue &root, bool expect_faults)
{
    const JsonValue *counters = root.member("counters");
    if (!counters || !counters->isArray())
        return; // section() already reported this

    std::map<std::string, const JsonValue *> fault;
    for (const JsonValue &c : counters->asArray()) {
        const JsonValue *name = c.member("name");
        if (name && name->isString() &&
            name->asString().rfind("fault.", 0) == 0)
            fault[name->asString()] = &c;
    }
    if (fault.empty()) {
        if (expect_faults)
            fail("--expect-faults: no fault.* counters present");
        return;
    }

    const struct
    {
        const char *name;
        const char *unit;
    } required[] = {
        {"fault.injected", "faults"},
        {"fault.retried", "attempts"},
        {"fault.recovered", "operations"},
        {"fault.degraded", "utterances"},
    };
    for (const auto &r : required) {
        auto it = fault.find(r.name);
        if (it == fault.end()) {
            fail(std::string("fault.* present but '") + r.name +
                 "' is missing");
            continue;
        }
        const JsonValue &c = *it->second;
        const JsonValue *unit = c.member("unit");
        if (unit && unit->isString() && unit->asString() != r.unit) {
            fail(std::string(r.name) + ": unit '" + unit->asString() +
                 "' != '" + r.unit + "'");
        }
        const JsonValue *det = c.member("deterministic");
        if (det && det->isBool() && !det->asBool())
            fail(std::string(r.name) + ": must be deterministic");
    }

    const std::string prefix = "fault.injected.";
    double deterministic_sum = 0.0;
    double total = 0.0;
    bool sum_valid = true;
    for (const auto &[name, c] : fault) {
        if (name.rfind(prefix, 0) != 0)
            continue;
        const std::string probe_name = name.substr(prefix.size());
        const darkside::ProbePoint *probe =
            darkside::findProbe(probe_name);
        if (!probe) {
            fail(name + ": '" + probe_name +
                 "' is not a registered probe point");
            sum_valid = false;
            continue;
        }
        const JsonValue *det = c->member("deterministic");
        if (det && det->isBool() &&
            det->asBool() != probe->deterministic) {
            fail(name + ": determinism flag disagrees with the probe "
                        "registry");
        }
        const JsonValue *value = c->member("value");
        if (!value || !value->isNonNegativeInteger()) {
            sum_valid = false;
            continue;
        }
        total += value->asNumber();
        if (probe->deterministic)
            deterministic_sum += value->asNumber();
    }
    auto injected = fault.find("fault.injected");
    if (sum_valid && injected != fault.end()) {
        const JsonValue *value = injected->second->member("value");
        if (value && value->isNonNegativeInteger() &&
            value->asNumber() != deterministic_sum) {
            fail("fault.injected != sum of fault.injected.<probe> "
                 "over deterministic probes");
        }
    }
    if (expect_faults && total == 0.0)
        fail("--expect-faults: no faults were injected");
}

void
checkFile(const char *path, bool expect_faults)
{
    current_file = path;
    std::ifstream is(path);
    if (!is) {
        fail("cannot open");
        return;
    }
    std::ostringstream buf;
    buf << is.rdbuf();

    std::string error;
    const JsonValue root = JsonValue::parse(buf.str(), &error);
    if (!error.empty()) {
        fail("parse error: " + error);
        return;
    }
    if (!root.isObject()) {
        fail("top level is not an object");
        return;
    }
    const JsonValue *schema = root.member("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != "darkside-metrics-v1") {
        fail("schema is not \"darkside-metrics-v1\"");
        return;
    }
    for (const auto &[key, value] : root.asObject()) {
        if (key != "schema" && key != "counters" && key != "gauges" &&
            key != "histograms") {
            fail("unexpected top-level member '" + key + "'");
        }
    }
    checkCounters(root);
    checkGauges(root);
    checkHistograms(root);
    checkFaultNamespace(root, expect_faults);
}

} // namespace

int
main(int argc, char **argv)
{
    bool expect_faults = false;
    int first_file = 1;
    if (first_file < argc &&
        std::strcmp(argv[first_file], "--expect-faults") == 0) {
        expect_faults = true;
        ++first_file;
    }
    if (first_file >= argc) {
        std::fprintf(stderr, "usage: metrics_check [--expect-faults] "
                             "<file.json> [...]\n");
        return 2;
    }
    for (int i = first_file; i < argc; ++i)
        checkFile(argv[i], expect_faults);
    if (failures > 0) {
        std::fprintf(stderr, "%d problem(s) found\n", failures);
        return 1;
    }
    std::printf("%d file(s) OK\n", argc - first_file);
    return 0;
}
