/**
 * @file
 * darkside — command-line front end to the library.
 *
 * Subcommands:
 *   corpus    print language / lexicon / graph statistics
 *   train     train the dense acoustic model and save it
 *   prune     prune + retrain a trained model at a target sparsity
 *   eval      evaluate model quality (top-1/top-5/confidence)
 *   decode    decode the test set with a chosen hypothesis selector
 *   simulate  run one full system configuration on the simulated HW
 *   sweep     run the complete {Baseline,Beam,NBest} x pruning matrix
 *   serve     streaming session server over synthetic traffic
 *
 * All subcommands share the scaled experiment setup; flags tweak the
 * pieces relevant to each. Run `darkside <subcommand> --help`.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "decoder/lattice.hh"
#include "decoder/search_telemetry.hh"
#include "fault/fault.hh"
#include "nbest/adaptive_selectors.hh"
#include "serve/serve_bench.hh"
#include "serve/serve_checkpoint.hh"
#include "store/checkpoint.hh"
#include "system/defaults.hh"
#include "telemetry/metrics.hh"
#include "telemetry/snapshot.hh"
#include "util/argparse.hh"
#include "util/text_table.hh"

using namespace darkside;

namespace {

/** Apply the common setup-shaping flags. */
void
addSetupFlags(ArgParser &args)
{
    args.addOption("utts", "test utterances", 12.0);
    args.addOption("cache", "model cache directory", "darkside_cache");
    args.addOption("beam", "beam width override (0 = config default)",
                   0.0);
    args.addOption("metrics",
                   "write a darkside-metrics-v1 JSON snapshot here", "");
    args.addOption("fault-plan",
                   "arm a darkside-fault-plan-v1 JSON plan "
                   "(or set DARKSIDE_FAULT_PLAN)",
                   "");
}

/**
 * Honour --fault-plan / DARKSIDE_FAULT_PLAN. A malformed plan is an
 * operator configuration error and dies; injected faults themselves
 * degrade gracefully downstream.
 */
void
armFaultPlan(const ArgParser &args)
{
    std::string path = args.get("fault-plan");
    if (path.empty()) {
        if (const char *env = std::getenv("DARKSIDE_FAULT_PLAN"))
            path = env;
    }
    if (path.empty())
        return;
    auto plan = FaultPlan::loadFile(path);
    if (!plan)
        fatal("%s", plan.message().c_str());
    FaultInjector::global().arm(plan.take());
    inform("fault injection armed from '%s'", path.c_str());
}

/** Honour --metrics: dump the global registry as schema JSON. */
int
writeMetrics(const ArgParser &args)
{
    const std::string &path = args.get("metrics");
    if (path.empty())
        return 0;
    const auto snap = telemetry::MetricRegistry::global().snapshot();
    if (!snap.writeJsonFile(path)) {
        std::fprintf(stderr, "cannot write metrics to '%s'\n",
                     path.c_str());
        return 1;
    }
    return 0;
}

ExperimentSetup
setupFrom(const ArgParser &args)
{
    armFaultPlan(args);
    ExperimentSetup setup = scaledSetup();
    setup.testUtterances =
        static_cast<std::size_t>(args.getInt("utts"));
    setup.zoo.cacheDir = args.get("cache");
    return setup;
}

PruneLevel
levelFrom(const std::string &name)
{
    if (name == "none" || name == "0")
        return PruneLevel::None;
    if (name == "70")
        return PruneLevel::P70;
    if (name == "80")
        return PruneLevel::P80;
    if (name == "90")
        return PruneLevel::P90;
    fatal("unknown pruning level '%s' (use none|70|80|90)",
          name.c_str());
}

SearchMode
modeFrom(const std::string &name)
{
    if (name == "baseline")
        return SearchMode::Baseline;
    if (name == "beam")
        return SearchMode::NarrowBeam;
    if (name == "nbest")
        return SearchMode::NBestHash;
    if (name == "rel")
        return SearchMode::RelativeThreshold;
    if (name == "adaptive")
        return SearchMode::AdaptiveBeam;
    fatal("unknown search mode '%s' "
          "(use baseline|beam|nbest|rel|adaptive)",
          name.c_str());
}

/** Parse a comma-separated search-mode list ("baseline,rel,..."). */
std::vector<SearchMode>
modesFrom(const std::string &list)
{
    std::vector<SearchMode> modes;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string name = list.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (!name.empty())
            modes.push_back(modeFrom(name));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (modes.empty())
        fatal("--modes needs at least one search mode");
    return modes;
}

int
cmdCorpus(int argc, const char *const *argv)
{
    ArgParser args("darkside corpus", "language and graph statistics");
    addSetupFlags(args);
    if (!args.parse(argc, argv))
        return 1;

    const ExperimentSetup setup = setupFrom(args);
    const Corpus corpus(setup.corpus);
    GraphBuilder builder(corpus.inventory(), corpus.lexicon(),
                         corpus.grammar(), setup.graph);
    const Wfst fst = builder.build();

    std::printf("phonemes: %u x %u states = %u sub-phoneme classes\n",
                corpus.inventory().phonemeCount(),
                corpus.inventory().statesPerPhoneme(),
                corpus.inventory().pdfCount());
    std::printf("vocabulary: %u words, %zu phoneme tokens\n",
                corpus.lexicon().wordCount(),
                corpus.lexicon().totalPhonemes());
    std::printf("grammar: %u followers/word, P(eos) = %.2f\n",
                setup.corpus.grammarBranching,
                setup.corpus.eosProbability);
    std::printf("decoding graph: %s\n", fst.summary().c_str());
    std::printf("DNN input: %zu features (%zu-dim frames, +/-%zu "
                "context)\n",
                corpus.spliceDim(),
                static_cast<std::size_t>(
                    setup.corpus.synthesizer.featureDim),
                setup.corpus.contextFrames);

    const auto utts = corpus.sampleUtterances(
        setup.testUtterances, setup.testSeed);
    std::size_t frames = 0, words = 0;
    for (const auto &u : utts) {
        frames += u.frames.size();
        words += u.words.size();
    }
    std::printf("test set: %zu utterances, %zu words, %zu frames "
                "(%.1f s of speech)\n",
                utts.size(), words, frames, frames * 0.01);
    return 0;
}

int
cmdTrain(int argc, const char *const *argv)
{
    ArgParser args("darkside train",
                   "train the dense acoustic model and save it");
    addSetupFlags(args);
    args.addOption("out", "output model file", "dense.mlp");
    args.addOption("epochs", "training epochs", 8.0);
    if (!args.parse(argc, argv))
        return 1;

    ExperimentSetup setup = setupFrom(args);
    setup.zoo.training.epochs =
        static_cast<std::size_t>(args.getInt("epochs"));
    setup.zoo.cacheDir = ""; // explicit file output instead

    const Corpus corpus(setup.corpus);
    const ModelZoo zoo(corpus, setup.zoo);
    zoo.model(PruneLevel::None).save(args.get("out"));
    std::printf("saved dense model to %s\n%s",
                args.get("out").c_str(),
                zoo.model(PruneLevel::None).summary().c_str());
    return 0;
}

int
cmdPrune(int argc, const char *const *argv)
{
    ArgParser args("darkside prune",
                   "prune + retrain a trained model");
    addSetupFlags(args);
    args.addOption("in", "input model file", "dense.mlp");
    args.addOption("out", "output model file", "pruned.mlp");
    args.addOption("target", "target pruned fraction", 0.9);
    args.addOption("retrain-epochs", "retraining epochs", 4.0);
    if (!args.parse(argc, argv))
        return 1;

    const ExperimentSetup setup = setupFrom(args);
    const Corpus corpus(setup.corpus);
    Mlp model = Mlp::load(args.get("in"));

    const auto train_utts = corpus.sampleUtterances(
        setup.zoo.trainUtterances, setup.zoo.trainSeed);
    const FrameDataset data = corpus.frameDataset(train_utts);

    const double quality = MagnitudePruner::findQualityForTarget(
        model, args.getNumber("target"));
    TrainerConfig retrain = setup.zoo.retraining;
    retrain.epochs =
        static_cast<std::size_t>(args.getInt("retrain-epochs"));
    PruneReport report;
    Mlp pruned =
        pruneAndRetrain(model, data, quality, retrain, &report);
    pruned.save(args.get("out"));
    std::printf("%s\nsaved pruned model to %s\n",
                report.render().c_str(), args.get("out").c_str());
    return 0;
}

int
cmdEval(int argc, const char *const *argv)
{
    ArgParser args("darkside eval",
                   "model quality: accuracy and confidence");
    addSetupFlags(args);
    if (!args.parse(argc, argv))
        return 1;

    const ExperimentSetup setup = setupFrom(args);
    ExperimentContext ctx(setup);
    const FrameDataset test = ctx.corpus.frameDataset(ctx.testSet);

    TextTable table;
    table.header({"model", "top-1", "top-5", "confidence", "xent"});
    for (PruneLevel level : kAllPruneLevels) {
        const EvalReport eval =
            Trainer::evaluate(ctx.zoo.model(level), test, 5);
        table.row({pruneLevelName(level),
                   TextTable::num(eval.top1Accuracy, 3),
                   TextTable::num(eval.topKAccuracy, 3),
                   TextTable::num(eval.meanConfidence, 3),
                   TextTable::num(eval.meanCrossEntropy, 3)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdDecode(int argc, const char *const *argv)
{
    ArgParser args("darkside decode",
                   "decode the test set, print WER and workload");
    addSetupFlags(args);
    args.addOption("prune", "pruning level (none|70|80|90)", "none");
    args.addOption("selector",
                   "unbounded | nbest:<N>:<ways> | accurate:<N> | "
                   "rel:<margin>:<cap> | adaptive:<min>:<max>",
                   "unbounded");
    args.addOption("transcripts",
                   "write one per-utterance transcript line here", "");
    args.addSwitch("lattice", "print each utterance's top paths");
    if (!args.parse(argc, argv))
        return 1;

    const ExperimentSetup setup = setupFrom(args);
    ExperimentContext ctx(setup);
    const PruneLevel level = levelFrom(args.get("prune"));
    float beam = static_cast<float>(args.getNumber("beam"));
    if (beam <= 0.0f)
        beam = setup.baselineBeam;

    auto make_selector =
        [&]() -> std::unique_ptr<HypothesisSelector> {
        const std::string &spec = args.get("selector");
        if (spec == "unbounded") {
            return std::make_unique<UnboundedSelector>(
                setup.platform.viterbiBaseline.hashEntries,
                setup.platform.viterbiBaseline.backupEntries);
        }
        unsigned n = 0, ways = 8;
        if (std::sscanf(spec.c_str(), "nbest:%u:%u", &n, &ways) >= 1 &&
            n > 0) {
            return std::make_unique<SetAssociativeHash>(n, ways);
        }
        if (std::sscanf(spec.c_str(), "accurate:%u", &n) == 1 && n > 0)
            return std::make_unique<AccurateNBest>(n);
        float margin = 0.0f, max_margin = 0.0f;
        if (std::sscanf(spec.c_str(), "rel:%f:%u", &margin, &n) == 2 &&
            margin > 0.0f && n > 0) {
            return std::make_unique<RelativeThresholdSelector>(margin,
                                                               n);
        }
        if (std::sscanf(spec.c_str(), "adaptive:%f:%f", &margin,
                        &max_margin) == 2 &&
            margin > 0.0f && max_margin >= margin) {
            return std::make_unique<AdaptiveBeamSelector>(margin,
                                                          max_margin);
        }
        fatal("bad --selector '%s'", spec.c_str());
    };

    // One compiled engine for the whole test set; each decode feeds
    // the telemetry observer, so --metrics captures both stages.
    const InferenceEngine engine(ctx.zoo.model(level));
    const LatticeDecoder decoder(ctx.fst, DecoderConfig{beam});
    SearchTelemetry search_telemetry;
    EditStats wer;
    std::uint64_t survivors = 0, frames = 0, degraded = 0;
    std::string transcripts;
    for (std::size_t i = 0; i < ctx.testSet.size(); ++i) {
        const auto &utt = ctx.testSet[i];
        // Per-utterance isolation: a fault anywhere in this body
        // degrades just this utterance; the batch carries on and the
        // command still exits 0.
        try {
            auto spliced = ctx.corpus.spliceUtterance(utt);
            std::optional<AcousticScores> scores;
            if (auto kind = FaultInjector::global().trigger(
                    "inference.scores", utt.id)) {
                if (*kind != FaultKind::NanScores)
                    throw FaultError("inference.scores", *kind, utt.id);
                scores = AcousticScores::poisoned(
                    spliced.size(), ctx.corpus.classCount());
            } else {
                scores = AcousticScores::fromEngine(
                    engine, spliced, setup.platform.acousticScale);
            }
            if (!scores->finite()) {
                throw FaultError("inference.scores",
                                 FaultKind::NanScores, utt.id);
            }
            // The software lattice decoder runs no watchdog; injected
            // decode faults degrade the utterance directly.
            if (auto kind = FaultInjector::global().trigger(
                    "decoder.decode", utt.id))
                throw FaultError("decoder.decode", *kind, utt.id);

            auto selector = make_selector();
            Lattice lattice;
            const DecodeResult result =
                decoder.decode(*scores, *selector, lattice,
                               &search_telemetry);
            wer.merge(alignSequences(utt.words, result.words));
            survivors += result.totalSurvivors();
            frames += result.frames.size();
            transcripts += "utt " + std::to_string(i) + " ok";
            for (WordId w : result.words)
                transcripts += " " + std::to_string(w);
            transcripts += "\n";
            if (args.getSwitch("lattice")) {
                std::printf("ref:");
                for (WordId w : utt.words)
                    std::printf(" %u", w);
                std::printf("\n%s", lattice.render(4).c_str());
            }
        } catch (const FaultError &e) {
            ++degraded;
            FaultInjector::global().noteDegraded();
            transcripts += "utt " + std::to_string(i) + " degraded " +
                e.what() + "\n";
            warn("utt %zu degraded: %s", i, e.what());
        }
    }
    std::printf("WER %.2f%% (%llu errors / %llu words), "
                "%.0f hypotheses/frame\n",
                100.0 * wer.wordErrorRate(),
                static_cast<unsigned long long>(wer.errors()),
                static_cast<unsigned long long>(wer.referenceLength),
                frames == 0 ? 0.0
                            : static_cast<double>(survivors) /
                        static_cast<double>(frames));
    if (degraded > 0) {
        std::printf("degraded %llu/%zu utterances (see fault.* "
                    "metrics)\n",
                    static_cast<unsigned long long>(degraded),
                    ctx.testSet.size());
    }
    if (!args.get("transcripts").empty()) {
        std::ofstream os(args.get("transcripts"));
        os << transcripts;
        if (!os) {
            std::fprintf(stderr, "cannot write transcripts to '%s'\n",
                         args.get("transcripts").c_str());
            return 1;
        }
    }
    return writeMetrics(args);
}

int
cmdSimulate(int argc, const char *const *argv)
{
    ArgParser args("darkside simulate",
                   "run one configuration on the simulated hardware");
    addSetupFlags(args);
    args.addOption("prune", "pruning level (none|70|80|90)", "none");
    args.addOption("mode", "baseline | beam | nbest | rel | adaptive",
                   "baseline");
    if (!args.parse(argc, argv))
        return 1;

    const ExperimentSetup setup = setupFrom(args);
    ExperimentContext ctx(setup);
    SystemConfig config = setup.configFor(modeFrom(args.get("mode")),
                                          levelFrom(args.get("prune")));
    if (args.getNumber("beam") > 0.0)
        config.beam = static_cast<float>(args.getNumber("beam"));

    const TestSetResult r = ctx.system.runTestSet(ctx.testSet, config);
    std::printf("config %s (beam %.1f)\n", config.label().c_str(),
                config.beam);
    std::printf("WER           %.2f%%\n",
                100.0 * r.wer.wordErrorRate());
    std::printf("confidence    %.3f\n", r.meanConfidence);
    std::printf("hyps/frame    %.0f\n", r.meanSurvivorsPerFrame());
    std::printf("DNN           %.3f ms  %.3f mJ\n",
                1e3 * r.dnn.seconds, 1e3 * r.dnn.joules);
    std::printf("Viterbi       %.3f ms  %.3f mJ\n",
                1e3 * r.viterbi.seconds, 1e3 * r.viterbi.joules);
    std::printf("search ms per speech second: p50 %.2f  p99 %.2f\n",
                1e3 * r.searchLatencyPerSpeechSecond.percentile(50),
                1e3 * r.searchLatencyPerSpeechSecond.percentile(99));
    if (r.degraded > 0) {
        std::printf("degraded      %llu/%zu utterances\n",
                    static_cast<unsigned long long>(r.degraded),
                    ctx.testSet.size());
    }
    return writeMetrics(args);
}

int
cmdSweep(int argc, const char *const *argv)
{
    ArgParser args("darkside sweep",
                   "the full configuration matrix (Figs. 11/12)");
    addSetupFlags(args);
    args.addOption("run-dir",
                   "run directory: checkpoint journal + persistent "
                   "score cache ('' = no checkpointing)",
                   "");
    args.addSwitch("resume",
                   "resume a killed run: replay completed units from "
                   "--run-dir's journal");
    args.addOption("threads", "decode worker threads", 1.0);
    args.addOption("modes",
                   "comma-separated search modes to sweep "
                   "(baseline|beam|nbest|rel|adaptive)",
                   "baseline,beam,nbest");
    if (!args.parse(argc, argv))
        return 1;

    const ExperimentSetup setup = setupFrom(args);
    ExperimentContext ctx(setup);
    const auto threads =
        static_cast<std::size_t>(args.getInt("threads"));
    if (threads == 0)
        fatal("--threads must be at least 1");

    const std::string &run_dir = args.get("run-dir");
    if (args.getSwitch("resume") && run_dir.empty())
        fatal("--resume requires --run-dir");
    std::optional<RunCheckpoint> checkpoint;
    if (!run_dir.empty()) {
        checkpoint.emplace(run_dir);
        // The run directory doubles as the persistent score cache, so
        // a resumed run does not re-score utterances from batches that
        // never committed.
        ctx.system.attachStore(
            std::make_shared<const ArtifactStore>(run_dir));
        inform("sweep: %s checkpointed run in '%s'",
               args.getSwitch("resume") ? "resuming" : "starting",
               run_dir.c_str());
    }

    // Run the whole matrix, then normalize against its first row
    // (Baseline-NP): one run per configuration keeps checkpoint unit
    // ids collision-free.
    std::vector<TestSetResult> results;
    for (SearchMode mode : modesFrom(args.get("modes"))) {
        for (PruneLevel level : kAllPruneLevels) {
            results.push_back(ctx.system.runTestSet(
                ctx.testSet, setup.configFor(mode, level), threads,
                checkpoint ? &*checkpoint : nullptr));
        }
    }
    const double norm_t = results.front().totalSeconds();
    const double norm_e = results.front().totalJoules();

    TextTable table;
    table.header({"config", "time %", "energy %", "speedup",
                  "energy sav", "WER %"});
    for (const TestSetResult &r : results) {
        table.row(
            {r.config.label(),
             TextTable::num(100.0 * r.totalSeconds() / norm_t, 1),
             TextTable::num(100.0 * r.totalJoules() / norm_e, 1),
             TextTable::num(norm_t / r.totalSeconds(), 2) + "x",
             TextTable::num(norm_e / r.totalJoules(), 2) + "x",
             TextTable::num(100.0 * r.wer.wordErrorRate(), 2)});
    }
    std::printf("%s", table.render().c_str());
    return writeMetrics(args);
}

int
cmdServe(int argc, const char *const *argv)
{
    ArgParser args("darkside serve",
                   "streaming session server over synthetic traffic "
                   "(docs/SERVING.md)");
    addSetupFlags(args);
    args.addOption("prune", "pruning level (none|70|80|90)", "90");
    args.addOption("mode", "baseline | beam | nbest | rel | adaptive",
                   "nbest");
    args.addOption("sessions", "sessions to offer", 32.0);
    args.addOption("rate", "open-loop Poisson arrivals per second",
                   200.0);
    args.addOption("tail", "Pareto shape of utterance lengths", 1.2);
    args.addOption("max-length",
                   "utterance length cap (base-utterance multiples)",
                   4.0);
    args.addOption("seed", "traffic seed", 20260808.0);
    args.addOption("chunk", "frames per chunk (0 = whole utterance)",
                   16.0);
    args.addOption("deadline",
                   "per-session wall budget in seconds (0 = off)", 0.0);
    args.addOption("threads", "session worker threads", 2.0);
    args.addOption("max-sessions",
                   "admission budget: concurrent sessions", 4.0);
    args.addOption("queue-depth",
                   "admission budget: queued pool tasks", 16.0);
    args.addOption("max-frames",
                   "admission length cap in frames (0 = off)", 0.0);
    args.addOption("breaker-k",
                   "circuit breaker: consecutive degraded sessions "
                   "that trip it (0 = off)",
                   0.0);
    args.addOption("breaker-cooldown",
                   "circuit breaker: seconds an open breaker waits "
                   "before half-opening",
                   0.05);
    args.addOption("run-dir",
                   "run directory: session journal + persistent score "
                   "cache ('' = no checkpointing)",
                   "");
    args.addSwitch("resume",
                   "resume a killed run: replay journaled sessions "
                   "from --run-dir");
    args.addOption("outcomes",
                   "write the deterministic per-session outcome dump "
                   "to this path",
                   "");
    args.addSwitch("no-pace",
                   "offer back to back instead of honoring the "
                   "arrival schedule (maximum admission pressure)");
    args.addSwitch("upfront-scoring",
                   "score each utterance in full before its first "
                   "chunk instead of pipelining scoring with decode");
    args.addSwitch("bench", "emit the BENCH_serve.json report");
    args.addOption("json",
                   "report JSON path (default BENCH_serve.json with "
                   "--bench)",
                   "");
    if (!args.parse(argc, argv))
        return 1;

    const ExperimentSetup setup = setupFrom(args);
    ExperimentContext ctx(setup);

    ServeWorkloadOptions options;
    options.serve.system = setup.configFor(modeFrom(args.get("mode")),
                                           levelFrom(args.get("prune")));
    if (args.getNumber("beam") > 0.0)
        options.serve.system.beam =
            static_cast<float>(args.getNumber("beam"));
    options.serve.chunkFrames =
        static_cast<std::size_t>(args.getInt("chunk"));
    options.serve.sessionDeadlineSeconds = args.getNumber("deadline");
    options.serve.threads =
        static_cast<std::size_t>(args.getInt("threads"));
    options.serve.admission.maxSessions =
        static_cast<std::size_t>(args.getInt("max-sessions"));
    options.serve.admission.maxQueueDepth =
        static_cast<std::size_t>(args.getInt("queue-depth"));
    options.serve.admission.maxSessionFrames =
        static_cast<std::size_t>(args.getInt("max-frames"));
    options.serve.breakerThreshold =
        static_cast<std::size_t>(args.getInt("breaker-k"));
    options.serve.breakerCooldownSeconds =
        args.getNumber("breaker-cooldown");
    options.traffic.sessions =
        static_cast<std::size_t>(args.getInt("sessions"));
    options.traffic.arrivalsPerSecond = args.getNumber("rate");
    options.traffic.tailShape = args.getNumber("tail");
    options.traffic.maxLengthMultiple =
        static_cast<std::size_t>(args.getInt("max-length"));
    options.traffic.seed =
        static_cast<std::uint64_t>(args.getInt("seed"));
    options.paceArrivals = !args.getSwitch("no-pace");
    options.serve.pipelineScoring = !args.getSwitch("upfront-scoring");
    if (options.serve.admission.maxSessions == 0)
        fatal("--max-sessions must be at least 1");

    const std::string &run_dir = args.get("run-dir");
    if (args.getSwitch("resume") && run_dir.empty())
        fatal("--resume requires --run-dir");
    std::optional<ServeCheckpoint> checkpoint;
    if (!run_dir.empty()) {
        checkpoint.emplace(run_dir);
        // The run directory doubles as the persistent score cache, so
        // a resumed run does not re-score utterances whose sessions
        // never committed.
        ctx.system.attachStore(
            std::make_shared<const ArtifactStore>(run_dir));
        options.checkpoint = &*checkpoint;
        options.serve.resume = args.getSwitch("resume");
        inform("serve: %s checkpointed run in '%s'",
               options.serve.resume ? "resuming" : "starting",
               run_dir.c_str());
    }

    // Warm the serving level's model + inference engine before the
    // clock starts: a long-lived server trains nothing during traffic.
    ctx.system.engineFor(options.serve.system.prune);

    std::vector<SessionOutcome> outcomes;
    const ServeReport report =
        runServeWorkload(ctx.system, ctx.testSet, options, &outcomes);
    printServeReport(std::cout, report, options);
    publishServeGauges(report);

    if (!args.get("outcomes").empty()) {
        std::ofstream os(args.get("outcomes"));
        os << serveOutcomesText(report, outcomes);
        if (!os) {
            std::fprintf(stderr, "cannot write outcomes to '%s'\n",
                         args.get("outcomes").c_str());
            return 1;
        }
    }

    std::string json_path = args.get("json");
    if (json_path.empty() && args.getSwitch("bench"))
        json_path = "BENCH_serve.json";
    if (!json_path.empty()) {
        std::ofstream os(json_path);
        os << serveReportJson(report, options);
        if (!os) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("\nwrote %s\n", json_path.c_str());
    }
    return writeMetrics(args);
}

void
printTopUsage()
{
    std::puts(
        "darkside — reproduction of 'The Dark Side of DNN Pruning'\n"
        "\n"
        "usage: darkside <subcommand> [flags]\n"
        "\n"
        "subcommands:\n"
        "  corpus     language and decoding-graph statistics\n"
        "  train      train the dense acoustic model\n"
        "  prune      prune + retrain a model\n"
        "  eval       model accuracy and confidence\n"
        "  decode     software decode with a chosen selector\n"
        "  simulate   one configuration on the simulated hardware\n"
        "  sweep      the full configuration matrix\n"
        "  serve      streaming session server over synthetic traffic\n"
        "\n"
        "run 'darkside <subcommand> --help' for flags");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        printTopUsage();
        return 1;
    }
    const std::string command = argv[1];
    const int sub_argc = argc - 1;
    const char *const *sub_argv = argv + 1;

    if (command == "corpus")
        return cmdCorpus(sub_argc, sub_argv);
    if (command == "train")
        return cmdTrain(sub_argc, sub_argv);
    if (command == "prune")
        return cmdPrune(sub_argc, sub_argv);
    if (command == "eval")
        return cmdEval(sub_argc, sub_argv);
    if (command == "decode")
        return cmdDecode(sub_argc, sub_argv);
    if (command == "simulate")
        return cmdSimulate(sub_argc, sub_argv);
    if (command == "sweep")
        return cmdSweep(sub_argc, sub_argv);
    if (command == "serve")
        return cmdServe(sub_argc, sub_argv);
    printTopUsage();
    return 1;
}
