/**
 * @file
 * Quickstart: the smallest end-to-end use of the library's public API.
 *
 * Builds a tiny synthetic language, trains a Kaldi-style acoustic MLP,
 * prunes it at 80% (Han et al.), and decodes a few utterances with the
 * Viterbi beam search — once with the unbounded baseline hypothesis
 * storage and once with the paper's loose N-best hash — printing WER,
 * confidence and search workload for both.
 *
 * Run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "decoder/viterbi_decoder.hh"
#include "dnn/topology.hh"
#include "nbest/selectors.hh"
#include "pruning/magnitude_pruner.hh"
#include "util/text_table.hh"
#include "wfst/graph_builder.hh"

using namespace darkside;

int
main()
{
    // 1. A synthetic language: 20 phonemes, 150 words, bigram grammar.
    CorpusConfig corpus_config;
    corpus_config.phonemes = 20;
    corpus_config.words = 150;
    corpus_config.grammarBranching = 8;
    corpus_config.contextFrames = 2;
    corpus_config.synthesizer.featureDim = 12;
    const Corpus corpus(corpus_config);
    std::printf("language: %u words, %zu sub-phoneme classes\n",
                corpus.lexicon().wordCount(), corpus.classCount());

    // 2. Train the acoustic model on sampled speech.
    Rng init_rng(1);
    Mlp model = KaldiTopology::build(
        KaldiTopology::scaled(corpus.classCount(), corpus.spliceDim(),
                              96, 3),
        init_rng);
    const auto train_utts = corpus.sampleUtterances(120, 11);
    const FrameDataset train = corpus.frameDataset(train_utts);
    Trainer trainer(TrainerConfig{.epochs = 4, .learningRate = 0.03f});
    trainer.train(model, train);
    std::printf("trained %zu parameters on %zu frames\n",
                model.parameterCount(), train.size());

    // 3. Prune at 80% and retrain (the Han et al. pipeline).
    const double quality =
        MagnitudePruner::findQualityForTarget(model, 0.80);
    PruneReport report;
    Mlp pruned = pruneAndRetrain(model, train, quality,
                                 TrainerConfig{.epochs = 2,
                                               .learningRate = 0.01f},
                                 &report);
    std::printf("\n%s\n", report.render().c_str());

    const auto test_utts = corpus.sampleUtterances(6, 99);
    const FrameDataset test = corpus.frameDataset(test_utts);
    const EvalReport dense_eval = Trainer::evaluate(model, test);
    const EvalReport pruned_eval = Trainer::evaluate(pruned, test);
    std::printf("confidence: dense %.3f -> pruned %.3f (top-5 acc "
                "%.3f -> %.3f)\n\n",
                dense_eval.meanConfidence, pruned_eval.meanConfidence,
                dense_eval.topKAccuracy, pruned_eval.topKAccuracy);

    // 4. Build the decoding graph and decode with two hypothesis
    //    storage policies.
    GraphConfig graph_config;
    GraphBuilder graph_builder(corpus.inventory(), corpus.lexicon(),
                               corpus.grammar(), graph_config);
    const Wfst fst = graph_builder.build();
    std::printf("decoding graph: %s\n\n", fst.summary().c_str());

    TextTable table;
    table.header({"model", "selector", "WER", "hyps/frame"});

    const ViterbiDecoder decoder(fst, DecoderConfig{12.0f});
    for (const Mlp *m : {&model, &pruned}) {
        for (int use_nbest = 0; use_nbest < 2; ++use_nbest) {
            EditStats wer;
            double survivors = 0.0;
            std::uint64_t frames = 0;
            for (const auto &utt : test_utts) {
                const auto scores = AcousticScores::fromMlp(
                    *m, corpus.spliceUtterance(utt), 1.0f);
                std::unique_ptr<HypothesisSelector> selector;
                if (use_nbest) {
                    selector =
                        std::make_unique<SetAssociativeHash>(256, 8);
                } else {
                    selector = std::make_unique<UnboundedSelector>();
                }
                const DecodeResult result =
                    decoder.decode(scores, *selector);
                wer.merge(alignSequences(utt.words, result.words));
                survivors +=
                    static_cast<double>(result.totalSurvivors());
                frames += result.frames.size();
            }
            table.row({m == &model ? "dense" : "pruned-80",
                       use_nbest ? "8-way N-best hash" : "unbounded",
                       TextTable::num(100.0 * wer.wordErrorRate(), 1) +
                           "%",
                       TextTable::num(survivors /
                                      static_cast<double>(frames), 1)});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("note how the pruned model inflates hyps/frame under\n"
                "the unbounded selector but not under the N-best hash.\n");
    return 0;
}
