/**
 * @file
 * Example: reproduce the paper's core observation interactively — DNN
 * pruning preserves top-1/top-5 accuracy but collapses prediction
 * confidence (Sec. II-B). Sweeps pruning from 0% to 95% on a trained
 * acoustic model and prints accuracy / confidence / model-size columns,
 * plus the score distribution of one frame (Fig. 1 in miniature).
 *
 * Run:  ./build/examples/pruning_confidence [sweep_points]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "corpus/corpus.hh"
#include "dnn/topology.hh"
#include "pruning/magnitude_pruner.hh"
#include "util/text_table.hh"

using namespace darkside;

int
main(int argc, char **argv)
{
    const int sweep_points = argc > 1 ? std::atoi(argv[1]) : 6;

    CorpusConfig corpus_config;
    corpus_config.phonemes = 24;
    corpus_config.words = 150;
    corpus_config.contextFrames = 2;
    corpus_config.synthesizer.featureDim = 12;
    const Corpus corpus(corpus_config);

    Rng init_rng(7);
    Mlp model = KaldiTopology::build(
        KaldiTopology::scaled(corpus.classCount(), corpus.spliceDim(),
                              128, 4),
        init_rng);
    const FrameDataset train =
        corpus.frameDataset(corpus.sampleUtterances(150, 21));
    const FrameDataset test =
        corpus.frameDataset(corpus.sampleUtterances(12, 22));

    Trainer trainer(TrainerConfig{.epochs = 5, .learningRate = 0.03f});
    trainer.train(model, train);
    const EvalReport dense = Trainer::evaluate(model, test);

    TextTable table;
    table.header({"pruning", "quality", "top-1", "top-5", "confidence",
                  "conf drop", "weights kept"});
    table.row({"0%", "-", TextTable::num(dense.top1Accuracy, 3),
               TextTable::num(dense.topKAccuracy, 3),
               TextTable::num(dense.meanConfidence, 3), "-", "100%"});

    for (int i = 1; i <= sweep_points; ++i) {
        const double target =
            0.5 + 0.45 * static_cast<double>(i) / sweep_points;
        const double quality =
            MagnitudePruner::findQualityForTarget(model, target);
        PruneReport report;
        Mlp pruned = pruneAndRetrain(
            model, train, quality,
            TrainerConfig{.epochs = 2, .learningRate = 0.01f}, &report);
        const EvalReport eval = Trainer::evaluate(pruned, test);
        const double drop =
            (dense.meanConfidence - eval.meanConfidence) /
            dense.meanConfidence;
        table.row(
            {TextTable::num(100.0 * report.globalPrunedFraction(), 0) +
                 "%",
             TextTable::num(quality, 2),
             TextTable::num(eval.top1Accuracy, 3),
             TextTable::num(eval.topKAccuracy, 3),
             TextTable::num(eval.meanConfidence, 3),
             TextTable::num(100.0 * drop, 1) + "%",
             TextTable::num(
                 100.0 * (1.0 - report.globalPrunedFraction()), 0) +
                 "%"});
    }
    std::printf("%s\n", table.render().c_str());

    // Fig. 1 in miniature: the full score distribution of one frame for
    // the dense model and a 90%-pruned model.
    const double q90 = MagnitudePruner::findQualityForTarget(model, 0.9);
    Mlp pruned90 = pruneAndRetrain(
        model, train, q90,
        TrainerConfig{.epochs = 2, .learningRate = 0.01f});

    // Pick a frame the dense model is very confident about.
    Vector dense_p, pruned_p;
    std::size_t pick = 0;
    float best_conf = 0.0f;
    Vector probe;
    for (std::size_t i = 0; i < std::min<std::size_t>(test.size(), 200);
         ++i) {
        model.forward(test[i].features, probe);
        const float conf = probe[argMax(probe)];
        if (conf > best_conf) {
            best_conf = conf;
            pick = i;
        }
    }
    model.forward(test[pick].features, dense_p);
    pruned90.forward(test[pick].features, pruned_p);

    std::printf("score distribution of one frame "
                "(class: posterior, top 8):\n");
    auto print_top = [](const char *label, const Vector &p) {
        std::vector<std::size_t> order(p.size());
        for (std::size_t i = 0; i < p.size(); ++i)
            order[i] = i;
        std::partial_sort(order.begin(), order.begin() + 8, order.end(),
                          [&p](std::size_t a, std::size_t b) {
                              return p[a] > p[b];
                          });
        std::printf("  %-10s", label);
        for (int i = 0; i < 8; ++i)
            std::printf(" %3zu:%.3f", order[i], p[order[i]]);
        std::printf("\n");
    };
    print_top("dense", dense_p);
    print_top("pruned-90", pruned_p);
    std::printf("\nthe top-1 class survives pruning, but its "
                "probability mass spreads over competitors —\n"
                "the \"dark side\" that inflates the beam search.\n");
    return 0;
}
