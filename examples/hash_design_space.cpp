/**
 * @file
 * Example: explore the N-best hash design space with the calibrated
 * score model (no DNN training needed). Sweeps capacity N and
 * associativity K, reporting similarity to the accurate N-best
 * selection, search workload and decoded WER — the kind of study behind
 * the paper's choice of a 1024-entry, 8-way table.
 *
 * Run:  ./build/examples/hash_design_space [utterances]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "decoder/viterbi_decoder.hh"
#include "nbest/selectors.hh"
#include "scoremodel/score_model.hh"
#include "util/text_table.hh"
#include "wfst/graph_builder.hh"

using namespace darkside;

namespace {

struct Workload
{
    std::vector<Utterance> utterances;
    std::vector<AcousticScores> scores;
};

Workload
makeWorkload(const Corpus &corpus, std::size_t count, double confidence)
{
    Workload w;
    w.utterances = corpus.sampleUtterances(count, 4711);
    ScoreModelConfig sc;
    sc.targetConfidence = confidence;
    sc.topErrorRate = 0.03;
    SyntheticScoreModel model(corpus.classCount(), sc);
    Rng rng(314159);
    for (const auto &utt : w.utterances) {
        w.scores.push_back(AcousticScores::fromPosteriors(
            model.posteriorsFor(utt.alignment, rng), 1.0f));
    }
    return w;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::size_t utterances =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 6;

    CorpusConfig corpus_config;
    corpus_config.phonemes = 30;
    corpus_config.words = 400;
    corpus_config.grammarBranching = 10;
    const Corpus corpus(corpus_config);

    GraphConfig graph_config;
    GraphBuilder builder(corpus.inventory(), corpus.lexicon(),
                         corpus.grammar(), graph_config);
    const Wfst fst = builder.build();
    std::printf("graph: %s\n", fst.summary().c_str());

    // A low-confidence score stream emulating a 90%-pruned model.
    const Workload workload = makeWorkload(corpus, utterances, 0.5);
    const ViterbiDecoder decoder(fst, DecoderConfig{13.0f});

    TextTable table;
    table.header({"selector", "N", "ways", "WER", "hyps/frm",
                  "similarity"});

    auto run = [&](HypothesisSelector &selector, const char *label,
                   std::size_t n, std::size_t ways) {
        EditStats wer;
        std::uint64_t survivors = 0, frames = 0;
        double similarity_sum = 0.0;
        std::size_t similarity_frames = 0;
        for (std::size_t u = 0; u < workload.utterances.size(); ++u) {
            const auto result =
                decoder.decode(workload.scores[u], selector);
            wer.merge(alignSequences(workload.utterances[u].words,
                                     result.words));
            for (const auto &f : result.frames)
                survivors += f.survivors;
            frames += result.frames.size();

            // Per-utterance similarity vs. accurate N-best, replayed on
            // the same score stream.
            if (n > 0) {
                AccurateNBest exact(n);
                const auto exact_result =
                    decoder.decode(workload.scores[u], exact);
                // Frame-level comparison requires running both in
                // lockstep; approximate with survivor-count agreement.
                similarity_sum += 1.0 -
                    std::abs(static_cast<double>(
                                 exact_result.totalSurvivors()) -
                             static_cast<double>(
                                 result.totalSurvivors())) /
                        std::max<double>(
                            1.0, static_cast<double>(
                                     exact_result.totalSurvivors()));
                ++similarity_frames;
            }
        }
        table.row({label, n ? std::to_string(n) : "-",
                   ways ? std::to_string(ways) : "-",
                   TextTable::num(100.0 * wer.wordErrorRate(), 1) + "%",
                   TextTable::num(static_cast<double>(survivors) /
                                  static_cast<double>(frames), 0),
                   similarity_frames
                       ? TextTable::num(similarity_sum /
                                        similarity_frames, 2)
                       : "-"});
    };

    {
        UnboundedSelector selector;
        run(selector, "unbounded", 0, 0);
    }
    for (std::size_t n : {256, 512, 1024}) {
        {
            AccurateNBest selector(n);
            run(selector, "accurate", n, 0);
        }
        {
            DirectMappedHash selector(n);
            run(selector, "direct-mapped", n, 1);
        }
        for (std::size_t ways : {2, 4, 8}) {
            SetAssociativeHash selector(n, ways);
            run(selector, "set-assoc", n, ways);
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("8-way at N=1024 tracks the accurate selection almost "
                "exactly with single-cycle hardware.\n");
    return 0;
}
