/**
 * @file
 * Example: the score-quality → search-workload coupling across model
 * families. Trains both a classical GMM acoustic model and the DNN on
 * the same synthetic corpus, then decodes the same utterances with
 * each, comparing frame accuracy, confidence, WER and — the paper's
 * central quantity — the number of hypotheses the Viterbi beam search
 * explores. Flatter scores (GMM, or a pruned DNN) mean more live
 * hypotheses, whoever produces them.
 *
 * Run:  ./build/examples/gmm_vs_dnn
 */

#include <cstdio>

#include "decoder/viterbi_decoder.hh"
#include "dnn/topology.hh"
#include "gmm/gmm_acoustic_model.hh"
#include "nbest/selectors.hh"
#include "pruning/magnitude_pruner.hh"
#include "util/text_table.hh"
#include "wfst/graph_builder.hh"

using namespace darkside;

int
main()
{
    CorpusConfig corpus_config;
    corpus_config.phonemes = 24;
    corpus_config.words = 300;
    corpus_config.grammarBranching = 20;
    corpus_config.contextFrames = 2;
    corpus_config.synthesizer.featureDim = 12;
    corpus_config.synthesizer.confusableClusters = 6;
    corpus_config.synthesizer.speakerStddev = 0.4;
    const Corpus corpus(corpus_config);

    const auto train_utts = corpus.sampleUtterances(150, 11);
    const FrameDataset train = corpus.frameDataset(train_utts);
    const auto test_utts = corpus.sampleUtterances(8, 99);
    const FrameDataset test = corpus.frameDataset(test_utts);
    std::printf("corpus: %zu train frames, %zu test frames, "
                "%zu classes\n",
                train.size(), test.size(), corpus.classCount());

    // --- DNN ---------------------------------------------------------
    Rng init_rng(1);
    Mlp dnn = KaldiTopology::build(
        KaldiTopology::scaled(corpus.classCount(), corpus.spliceDim(),
                              128, 4),
        init_rng);
    Trainer trainer(TrainerConfig{.epochs = 6, .learningRate = 0.03f});
    trainer.train(dnn, train);

    // A 90%-pruned DNN for the three-way comparison.
    Mlp pruned = pruneAndRetrain(
        dnn, train, MagnitudePruner::findQualityForTarget(dnn, 0.9),
        TrainerConfig{.epochs = 2, .learningRate = 0.01f});

    // --- GMM ---------------------------------------------------------
    GmmTrainConfig gmm_config;
    gmm_config.componentsPerClass = 4;
    gmm_config.emIterations = 6;
    const GmmAcousticModel gmm =
        GmmAcousticModel::train(train, corpus.classCount(), gmm_config);

    // --- Frame-level quality ------------------------------------------
    const EvalReport dnn_eval = Trainer::evaluate(dnn, test);
    const EvalReport pruned_eval = Trainer::evaluate(pruned, test);
    const EvalReport gmm_eval = gmm.evaluate(test);

    // --- Decode-level behaviour ---------------------------------------
    GraphConfig graph_config;
    GraphBuilder builder(corpus.inventory(), corpus.lexicon(),
                         corpus.grammar(), graph_config);
    const Wfst fst = builder.build();
    const ViterbiDecoder decoder(fst, DecoderConfig{12.0f});
    const float scale = 0.3f;

    auto decode_with = [&](auto score_fn) {
        EditStats wer;
        std::uint64_t survivors = 0, frames = 0;
        for (const auto &utt : test_utts) {
            const AcousticScores scores = score_fn(utt);
            UnboundedSelector selector;
            const DecodeResult result =
                decoder.decode(scores, selector);
            wer.merge(alignSequences(utt.words, result.words));
            survivors += result.totalSurvivors();
            frames += result.frames.size();
        }
        return std::pair<double, double>(
            100.0 * wer.wordErrorRate(),
            static_cast<double>(survivors) /
                static_cast<double>(frames));
    };

    const auto dnn_run = decode_with([&](const Utterance &utt) {
        return AcousticScores::fromMlp(
            dnn, corpus.spliceUtterance(utt), scale);
    });
    const auto pruned_run = decode_with([&](const Utterance &utt) {
        return AcousticScores::fromMlp(
            pruned, corpus.spliceUtterance(utt), scale);
    });
    const auto gmm_run = decode_with([&](const Utterance &utt) {
        return gmm.score(corpus.spliceUtterance(utt), scale);
    });

    TextTable table;
    table.header({"model", "top-1", "confidence", "WER %",
                  "hyps/frame"});
    table.row({"DNN (dense)", TextTable::num(dnn_eval.top1Accuracy, 3),
               TextTable::num(dnn_eval.meanConfidence, 3),
               TextTable::num(dnn_run.first, 2),
               TextTable::num(dnn_run.second, 0)});
    table.row({"DNN (90% pruned)",
               TextTable::num(pruned_eval.top1Accuracy, 3),
               TextTable::num(pruned_eval.meanConfidence, 3),
               TextTable::num(pruned_run.first, 2),
               TextTable::num(pruned_run.second, 0)});
    table.row({"GMM", TextTable::num(gmm_eval.top1Accuracy, 3),
               TextTable::num(gmm_eval.meanConfidence, 3),
               TextTable::num(gmm_run.first, 2),
               TextTable::num(gmm_run.second, 0)});
    std::printf("\n%s\n", table.render().c_str());
    std::printf("whatever produces the scores, lower confidence means "
                "more live hypotheses in the beam search — the paper's "
                "coupling, reproduced across model families.\n");
    return 0;
}
