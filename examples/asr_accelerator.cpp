/**
 * @file
 * Example: drive the full simulated hardware platform — DNN accelerator
 * + Viterbi accelerator — across the paper's twelve configurations
 * ({Baseline, Beam, NBest} x {NP, 70, 80, 90}) on the default scaled
 * experiment, printing the per-stage time/energy split like Sec. V.
 *
 * The first run trains the four acoustic models (about a minute) and
 * caches them in ./darkside_cache; later runs start instantly.
 *
 * Run:  ./build/examples/asr_accelerator [test_utterances]
 */

#include <cstdio>
#include <cstdlib>

#include "system/defaults.hh"
#include "util/text_table.hh"

using namespace darkside;

int
main(int argc, char **argv)
{
    ExperimentSetup setup = scaledSetup();
    if (argc > 1)
        setup.testUtterances = static_cast<std::size_t>(
            std::atoi(argv[1]));

    std::printf("building corpus, graph and models "
                "(cached in %s)...\n",
                setup.zoo.cacheDir.c_str());
    ExperimentContext ctx(setup);
    std::printf("graph: %s\n", ctx.fst.summary().c_str());
    std::printf("model: %zu parameters\n\n",
                ctx.zoo.model(PruneLevel::None).parameterCount());

    const auto baseline_np = ctx.system.runTestSet(
        ctx.testSet,
        setup.configFor(SearchMode::Baseline, PruneLevel::None));
    const double norm_t = baseline_np.totalSeconds();
    const double norm_e = baseline_np.totalJoules();

    TextTable table;
    table.header({"config", "WER", "conf", "hyps/frm", "DNN t%",
                  "Vit t%", "total t%", "energy%", "speedup",
                  "energy sav"});

    for (SearchMode mode : {SearchMode::Baseline, SearchMode::NarrowBeam,
                            SearchMode::NBestHash}) {
        for (PruneLevel level : kAllPruneLevels) {
            const auto config = setup.configFor(mode, level);
            const auto result =
                ctx.system.runTestSet(ctx.testSet, config);
            table.row(
                {config.label(),
                 TextTable::num(100.0 * result.wer.wordErrorRate(), 1) +
                     "%",
                 TextTable::num(result.meanConfidence, 2),
                 TextTable::num(result.meanSurvivorsPerFrame(), 0),
                 TextTable::num(100.0 * result.dnn.seconds / norm_t, 1),
                 TextTable::num(100.0 * result.viterbi.seconds / norm_t,
                                1),
                 TextTable::num(100.0 * result.totalSeconds() / norm_t,
                                1),
                 TextTable::num(100.0 * result.totalJoules() / norm_e,
                                1),
                 TextTable::num(norm_t / result.totalSeconds(), 2) + "x",
                 TextTable::num(norm_e / result.totalJoules(), 2) +
                     "x"});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("(time and energy normalized to Baseline-NP; the "
                "paper's headline numbers are NBest-90's speedup and "
                "energy savings vs. Baseline-NP)\n");
    return 0;
}
