/**
 * @file
 * Example: word lattices and N-best transcripts. Decodes a few
 * utterances while keeping every end-of-utterance alternative, prints
 * the ranked candidate sentences, and reports oracle WER — how much
 * accuracy is still *contained* in the surviving hypotheses. This is
 * the quantity that justifies the loose N-best selection: as long as
 * the correct path is among the kept hypotheses, hardware may discard
 * the rest.
 *
 * Run:  ./build/examples/lattice_nbest
 */

#include <cstdio>

#include "decoder/lattice.hh"
#include "nbest/selectors.hh"
#include "scoremodel/score_model.hh"
#include "util/text_table.hh"
#include "wfst/graph_builder.hh"

using namespace darkside;

int
main()
{
    CorpusConfig corpus_config;
    corpus_config.phonemes = 20;
    corpus_config.words = 200;
    corpus_config.grammarBranching = 15;
    const Corpus corpus(corpus_config);

    GraphConfig graph_config;
    GraphBuilder builder(corpus.inventory(), corpus.lexicon(),
                         corpus.grammar(), graph_config);
    const Wfst fst = builder.build();
    std::printf("graph: %s\n\n", fst.summary().c_str());

    // Low-confidence scores (a pruned model's world view): the lattice
    // carries many competitive alternatives.
    ScoreModelConfig score_config;
    score_config.targetConfidence = 0.45;
    score_config.topErrorRate = 0.05;
    const SyntheticScoreModel score_model(corpus.classCount(),
                                          score_config);

    const auto utts = corpus.sampleUtterances(6, 77);
    const LatticeDecoder decoder(fst, DecoderConfig{13.0f});
    Rng score_rng(4242);

    EditStats onebest_wer, oracle_wer;
    for (std::size_t i = 0; i < utts.size(); ++i) {
        const auto &utt = utts[i];
        const auto scores = AcousticScores::fromPosteriors(
            score_model.posteriorsFor(utt.alignment, score_rng), 1.0f);

        UnboundedSelector selector;
        Lattice lattice;
        const DecodeResult result =
            decoder.decode(scores, selector, lattice);

        onebest_wer.merge(alignSequences(utt.words, result.words));
        oracle_wer.merge(lattice.oracle(utt.words));

        std::printf("utterance %zu — reference:", i);
        for (WordId w : utt.words)
            std::printf(" %s", corpus.lexicon().spell(w).c_str());
        std::printf("\n%zu alternatives in the lattice; top 3:\n",
                    lattice.pathCount());
        for (const auto &path : lattice.nBest(3)) {
            std::printf("  [%7.2f]%s", path.cost,
                        path.complete ? "" : " (incomplete)");
            for (WordId w : path.words)
                std::printf(" %s", corpus.lexicon().spell(w).c_str());
            std::printf("\n");
        }
    }

    std::printf("\n1-best WER: %.2f%%   lattice-oracle WER: %.2f%%\n",
                100.0 * onebest_wer.wordErrorRate(),
                100.0 * oracle_wer.wordErrorRate());
    std::printf("the oracle gap is the headroom a smarter rescoring "
                "pass (or a bounded N-best hardware selector) can "
                "exploit without re-running the search.\n");
    return 0;
}
